//! The always-on query server: a `std::net::TcpListener` front speaking
//! both wire protocols (newline-JSON and [binary frames](crate::wire),
//! negotiated per connection by its first byte) over one sharded
//! correlated-`F_2` ingest (queried through the
//! [background merger](crate::merger)) plus synchronously-updated
//! `F_0`/rarity/heavy-hitter sketches, with snapshot persistence.
//!
//! ## Architecture
//!
//! ```text
//!      TCP clients (JSON lines or binary frames; first-byte sniff)
//!        │ accept thread → fixed worker pool, non-blocking reads
//!        │ ingest / flush            │ f2 queries
//!        ▼                           ▼
//!   Mutex<ShardedIngest<F2>>   BackgroundMerger ── epoch-published
//!      │ SPSC rings → N shards ◄── ShardReader       composite
//!      ▼                          (demand-bounded rebuilds off the
//!   Mutex<{CorrelatedF0,            read path)
//!          CorrelatedRarity, CorrelatedHeavyHitters}>
//!      ▲ f0 / rarity / heavy_hitters queries + synchronous inserts
//! ```
//!
//! Connections are served by a **fixed pool of polling workers** (2–4
//! threads) instead of one thread each: the acceptor hands sockets to
//! workers round-robin; each worker sweeps its sockets with non-blocking
//! reads, spinning while traffic flows and backing off to timed sleeps as
//! they idle. [`ServeConfig::max_connections`] bounds the total; over the
//! limit, a connection is answered with one error line and closed.
//!
//! `f2` answers come from the merger's published composite and therefore lag
//! ingest by at most `merge_every − 1` applied batches plus one in-flight
//! rebuild — and never block on that rebuild. The auxiliary sketches are
//! updated inline under their own lock (they are `O(1)`-ish per insert) and
//! answer with read-your-writes semantics. `flush` is the barrier that makes
//! `f2` exact too.
//!
//! ## Windowed structures
//!
//! Alongside the whole-stream sketches the server hosts two pane rings
//! (`cora_stream::windowed`): a windowed correlated `F_2` and a windowed
//! correlated `F_0`, updated under their own lock on every ingest. Tuples
//! carry either client-supplied timestamps (the optional `ts` ingest array)
//! or consecutive server-side arrival ticks; `window_f2` / `window_f0`
//! answer sliding-window thresholds over them and report the pane-aligned
//! resolved span alongside the value.
//!
//! ## Snapshot bundle
//!
//! The `snapshot` op writes one file: a `CSRV` container holding the seven
//! `cora_core::snapshot` frames (framework composite, F0, rarity, heavy
//! hitters, the two windowed pane rings, and the per-writer ingest sequence
//! map), each individually checksummed. [`start_restored`] boots a server
//! from such a file; restored structures answer queries bit-identically
//! (pinned by the integration tests and the CI serve-smoke step).
//!
//! ## Durability
//!
//! With [`ServeConfig::durability`] set, the server journals every accepted
//! ingest batch to a write-ahead log *before* applying it (`crate::journal`),
//! fsyncing by default, so the ack a client receives is a durability
//! receipt. A background thread rotates generations — publish snapshot
//! `snap-<g>.csrv` atomically, open journal `journal-<g>.cjl` for the
//! batches after it — on tuple-count and/or wall-clock triggers; the
//! `snapshot` op with an empty `path` forces a rotation. On start the server
//! recovers: newest readable snapshot (falling back past torn or corrupt
//! ones to the previous generation), then valid-prefix replay of every
//! journal at or after it. Acked batches survive `SIGKILL`; unsynced ones
//! are bounded by the journal's fsync policy. All storage goes through the
//! injectable [`Storage`] trait so the fault-injection suite
//! (`crate::faults`) can prove the recovery paths deterministically.

use crate::journal::{
    journal_path, list_generations, scan_journal, snapshot_path, JournalRecord, JournalWriter,
    Storage,
};
use crate::merger::BackgroundMerger;
use crate::protocol::{self, Reply, Request, Value};
use crate::wire::{self, Opcode};
use cora_core::snapshot::{open_frame, seal_delta_into, seal_frame_into, DeltaHeader};
use cora_core::{
    CoreError, CorrelatedConfig, CorrelatedF0, CorrelatedHeavyHitters, CorrelatedRarity,
    F2Aggregate, SnapshotKind,
};
use cora_sketch::codec::{ByteReader, ByteWriter};
use cora_stream::windowed::{
    windowed_f0, windowed_f2, PaneConfig, PaneRing, WindowPane, WindowedF0, WindowedF2,
};
use cora_stream::ShardedIngest;
use std::collections::HashMap;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Errors starting or restoring a server.
#[derive(Debug)]
pub enum ServeError {
    /// A sketch could not be built or restored.
    Core(CoreError),
    /// Socket or file I/O failed.
    Io(std::io::Error),
    /// The configuration or snapshot bundle is unusable.
    Invalid(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "sketch error: {e}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Invalid(detail) => write!(f, "invalid serve setup: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Construction parameters for a serving instance. Every sketch the server
/// hosts is derived from these (and only these), so a config plus a snapshot
/// bundle fully determines a server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Target relative error for every hosted sketch.
    pub epsilon: f64,
    /// Target failure probability.
    pub delta: f64,
    /// Largest y value accepted by `ingest`.
    pub y_max: u64,
    /// Upper bound on the stream length (sizes the `F_2` level count).
    pub max_stream_len: u64,
    /// Master seed shared by every hosted sketch.
    pub seed: u64,
    /// Ingest worker shards for the `F_2` structure.
    pub shards: usize,
    /// Background-merger trigger: rebuild the published composite once this
    /// many new batches have been applied (≥ 1; 1 = republish eagerly).
    pub merge_every: u64,
    /// Smallest heavy-hitter share threshold the server must support.
    pub phi: f64,
    /// `log2` of the identifier domain (sizes the F0/rarity samplers).
    pub x_domain_log2: u32,
    /// Base pane width (ticks) of the windowed structures.
    pub pane_ticks: u64,
    /// Per-class pane budget of the windowed structures (≥ 2).
    pub pane_k: usize,
    /// Retention horizon of the windowed structures in ticks
    /// (`None` = landmark mode, keep coarsening history forever).
    pub pane_retention: Option<u64>,
    /// Simultaneous client connections accepted before new ones are turned
    /// away with an error (resource hardening; see the accept loop).
    pub max_connections: usize,
    /// Crash-safe durability: journal every ingest batch and keep rotating
    /// snapshots in the configured directory (`None` = in-memory only, the
    /// historical behavior).
    pub durability: Option<DurabilityConfig>,
    /// Shared-secret authentication: when set, every connection (both wire
    /// protocols) must present this token via the `auth` op before any
    /// other request is served; unauthenticated requests get a structured
    /// `request` error and the connection stays open for a retry.
    pub auth_token: Option<String>,
    /// Continuous replication to a downstream aggregator node
    /// (`None` = standalone, the historical behavior).
    pub replicate: Option<ReplicateConfig>,
}

/// Replication parameters: where the downstream aggregator lives, what this
/// node's stream is called there, and how the delta shipping is paced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicateConfig {
    /// Aggregator address (`host:port`); the replication link speaks the
    /// binary protocol.
    pub target: String,
    /// Stream name this node registers under on the aggregator
    /// (`[A-Za-z0-9_.-]`, at most 64 bytes).
    pub stream: String,
    /// Milliseconds between delta cuts while new tuples keep arriving
    /// (idle periods cut nothing — the generation counter only advances
    /// when a delta actually ships).
    pub interval_ms: u64,
    /// Auth token presented to the aggregator, when it requires one.
    pub auth_token: Option<String>,
    /// Unacknowledged delta cuts buffered while the link is down before
    /// the replicator gives up on the chain and falls back to a full
    /// snapshot resync (bounds replica-side memory).
    pub max_pending: usize,
}

impl ReplicateConfig {
    /// Replicate to `target` as `stream` with the default pacing: cut every
    /// 200 ms, buffer up to 32 unacked cuts, no auth.
    pub fn new(target: impl Into<String>, stream: impl Into<String>) -> Self {
        Self {
            target: target.into(),
            stream: stream.into(),
            interval_ms: 200,
            auth_token: None,
            max_pending: 32,
        }
    }
}

/// Durability parameters: where the journal and snapshots live and when the
/// background thread rotates generations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Directory holding `snap-<g>.csrv` / `journal-<g>.cjl` generation
    /// files (created if missing).
    pub dir: PathBuf,
    /// Rotate once this many tuples have been journaled since the last
    /// snapshot (0 disables the tuple trigger).
    pub snapshot_every_tuples: u64,
    /// Rotate once this many milliseconds have passed since the last
    /// snapshot (0 disables the time trigger).
    pub snapshot_interval_ms: u64,
    /// Fsync the journal after every batch append. `true` (the default)
    /// makes every ack a durability receipt; `false` trades bounded loss
    /// (up to one OS write-back window) for throughput.
    pub fsync_each_batch: bool,
}

impl DurabilityConfig {
    /// Durability in `dir` with the default policy: fsync every batch,
    /// rotate every 200 000 tuples, no time trigger.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_every_tuples: 200_000,
            snapshot_interval_ms: 0,
            fsync_each_batch: true,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.2,
            delta: 0.1,
            y_max: (1 << 20) - 1,
            max_stream_len: 10_000_000,
            seed: 0xC04A_5EED,
            shards: 4,
            merge_every: 4,
            phi: 0.05,
            x_domain_log2: 24,
            pane_ticks: 1_024,
            pane_k: 4,
            pane_retention: None,
            max_connections: 1_024,
            durability: None,
            auth_token: None,
            replicate: None,
        }
    }
}

impl ServeConfig {
    /// Fingerprint of every parameter that must agree across replication
    /// peers for Property-V mergeability: sketches built from the same
    /// seed and geometry merge into the sketch of the union, so a delta
    /// cut here restores and merges cleanly on the aggregator. Transport
    /// settings (shards, merge cadence, pane geometry, connection limits,
    /// durability, auth) are deliberately excluded — they may differ per
    /// node.
    pub fn replication_fingerprint(&self) -> u64 {
        let mut w = ByteWriter::new();
        w.put_u64(self.epsilon.to_bits());
        w.put_u64(self.delta.to_bits());
        w.put_u64(self.y_max);
        w.put_u64(self.max_stream_len);
        w.put_u64(self.seed);
        w.put_u64(self.phi.to_bits());
        w.put_u64(u64::from(self.x_domain_log2));
        cora_sketch::codec::fnv1a64(w.as_bytes())
    }

    /// A fresh correlated-`F_0` sampler with this config's parameters.
    pub(crate) fn fresh_f0(&self) -> Result<CorrelatedF0, CoreError> {
        CorrelatedF0::with_seed(
            self.epsilon,
            self.delta,
            self.x_domain_log2,
            self.y_max,
            self.seed,
        )
    }

    /// A fresh correlated-rarity sampler with this config's parameters.
    pub(crate) fn fresh_rarity(&self) -> Result<CorrelatedRarity, CoreError> {
        CorrelatedRarity::with_seed(self.epsilon, self.x_domain_log2, self.y_max, self.seed)
    }

    /// A fresh correlated heavy-hitters sketch with this config's
    /// parameters.
    pub(crate) fn fresh_hh(&self) -> Result<CorrelatedHeavyHitters, CoreError> {
        CorrelatedHeavyHitters::with_seed(
            self.epsilon,
            self.delta,
            self.phi,
            self.y_max,
            self.max_stream_len,
            self.seed,
        )
    }

    /// A fresh (empty) correlated-`F_2` framework sketch with this config's
    /// parameters — the aggregator's per-stream and union composite shape.
    pub(crate) fn fresh_f2_sketch(
        &self,
    ) -> Result<cora_core::CorrelatedSketch<F2Aggregate>, CoreError> {
        cora_core::CorrelatedSketch::new(self.f2_aggregate(), self.f2_config()?)
    }

    /// The derived correlated-`F_2` aggregate.
    pub(crate) fn f2_aggregate(&self) -> F2Aggregate {
        F2Aggregate::new(self.epsilon, self.delta, self.seed)
    }

    /// The derived framework configuration for the `F_2` structure.
    fn f2_config(&self) -> Result<CorrelatedConfig, CoreError> {
        use cora_core::CorrelatedAggregate;
        let agg = self.f2_aggregate();
        Ok(CorrelatedConfig::new(
            self.epsilon,
            self.delta,
            self.y_max,
            agg.f_max_log2(self.max_stream_len),
        )?
        .with_seed(self.seed))
    }

    /// The derived pane geometry for the windowed structures.
    fn pane_config(&self) -> PaneConfig {
        PaneConfig {
            pane_ticks: self.pane_ticks,
            k: self.pane_k,
            retention: self.pane_retention,
        }
    }
}

/// The windowed structures plus the server's tick clock: tuples ingested
/// without explicit timestamps are stamped with consecutive arrival ticks;
/// explicit timestamps advance the clock past themselves.
struct WindowState {
    f2: WindowedF2,
    f0: WindowedF0,
    clock: u64,
}

/// The auxiliary sketches updated synchronously on every ingest, plus —
/// while replication is enabled — since-last-cut delta copies fed the same
/// tuples. [`ServerCore::repl_cut`] swaps the deltas for fresh ones, so each
/// cut covers exactly the tuples between two cuts (Property V makes merging
/// such a delta on the aggregator equivalent to having streamed the tuples
/// there directly).
struct AuxSketches {
    f0: CorrelatedF0,
    rarity: CorrelatedRarity,
    hh: CorrelatedHeavyHitters,
    f0_delta: Option<CorrelatedF0>,
    rarity_delta: Option<CorrelatedRarity>,
    hh_delta: Option<CorrelatedHeavyHitters>,
}

/// The live durability machinery: the open journal plus rotation state.
/// `None` inside the server's `durable` slot while durability is off (and
/// during recovery replay, which must not re-journal what it reads).
struct DurableState {
    storage: Arc<dyn Storage>,
    dir: PathBuf,
    fsync: bool,
    journal: JournalWriter,
    /// Generation of the newest successfully published snapshot — the
    /// retention floor (everything older than the *previous* good snapshot
    /// is deleted after a rotation, keeping one fallback generation).
    last_good: u64,
    /// Tuples journaled since the last snapshot (the rotation trigger).
    tuples_since: u64,
    /// When the last snapshot was published (the time trigger).
    last_snapshot: Instant,
}

/// Shared server state.
pub(crate) struct ServerCore {
    config: ServeConfig,
    sharded: Mutex<ShardedIngest<F2Aggregate>>,
    aux: Mutex<AuxSketches>,
    windows: Mutex<WindowState>,
    merger: BackgroundMerger<F2Aggregate>,
    /// Per-writer ingest sequence high-water marks: a batch tagged
    /// `(writer, seq)` with `seq` at or below the mark is a duplicate
    /// resend and is acked without being applied (idempotent replay).
    seqs: Mutex<HashMap<u64, u64>>,
    /// `Some` once durability is open. Lock order: `sharded` → `aux` →
    /// `windows` → `seqs` → `durable` (ingest and rotation both follow it).
    durable: Mutex<Option<DurableState>>,
    requests: AtomicU64,
    accepted: AtomicU64,
    snapshots: AtomicU64,
    journal_batches: AtomicU64,
    journal_bytes: AtomicU64,
    auto_snapshots: AtomicU64,
    snapshot_errors: AtomicU64,
    /// `items_accepted` as of the last replication cut — lets the
    /// replicator skip cutting (and skip advancing the generation counter)
    /// while nothing new has arrived.
    repl_cut_items: AtomicU64,
}

/// Section tags inside a replication delta container
/// ([`SnapshotKind::Delta`](cora_core::SnapshotKind)), one per replicated
/// structure. The windowed pane rings and the per-writer sequence map are
/// deliberately *not* replicated: the aggregator serves whole-stream
/// queries over the union, and idempotency is a per-upstream concern.
pub(crate) const REPL_SECTION_F2: u8 = 1;
/// Delta container section tag: the `F_0` sampler frame.
pub(crate) const REPL_SECTION_F0: u8 = 2;
/// Delta container section tag: the rarity sampler frame.
pub(crate) const REPL_SECTION_RARITY: u8 = 3;
/// Delta container section tag: the heavy-hitters frame.
pub(crate) const REPL_SECTION_HH: u8 = 4;

/// One replication cut: a sealed [`SnapshotKind::Delta`] container plus the
/// generation span `(g_from, g_to]` it covers. `g_from == 0` marks a full
/// replacement snapshot (shipped via `repl_snapshot`), anything else an
/// incremental delta that must chain onto the aggregator's high water.
pub(crate) struct ReplCut {
    /// Exclusive lower generation bound (0 = full replacement).
    pub g_from: u64,
    /// Inclusive upper generation bound — the aggregator's high water after
    /// applying this cut.
    pub g_to: u64,
    /// The sealed delta container (checksummed outer frame, per-structure
    /// sections).
    pub frame: Vec<u8>,
}

/// Magic bytes of a snapshot bundle file.
const BUNDLE_MAGIC: [u8; 4] = *b"CSRV";
/// Bundle container version. Version 2 added the windowed sections (5, 6);
/// version 3 added the ingest-sequence section (7). Older bundles are
/// refused rather than restored into a server that would silently answer
/// window queries from an empty ring or re-apply replayed batches.
const BUNDLE_VERSION: u16 = 3;
/// Section tags inside a bundle.
const SECTION_F2: u8 = 1;
const SECTION_F0: u8 = 2;
const SECTION_RARITY: u8 = 3;
const SECTION_HH: u8 = 4;
const SECTION_WINDOW_F2: u8 = 5;
const SECTION_WINDOW_F0: u8 = 6;
const SECTION_SEQS: u8 = 7;

/// Decoded snapshot bundle: one `cora_core::snapshot` frame per structure.
pub(crate) struct Bundle {
    pub(crate) f2: Vec<u8>,
    pub(crate) f0: Vec<u8>,
    pub(crate) rarity: Vec<u8>,
    pub(crate) hh: Vec<u8>,
    pub(crate) window_f2: Vec<u8>,
    pub(crate) window_f0: Vec<u8>,
    pub(crate) seqs: Vec<u8>,
}

fn encode_bundle(bundle: &Bundle) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(&BUNDLE_MAGIC);
    w.put_u16(BUNDLE_VERSION);
    w.put_u8(7);
    for (tag, frame) in [
        (SECTION_F2, &bundle.f2),
        (SECTION_F0, &bundle.f0),
        (SECTION_RARITY, &bundle.rarity),
        (SECTION_HH, &bundle.hh),
        (SECTION_WINDOW_F2, &bundle.window_f2),
        (SECTION_WINDOW_F0, &bundle.window_f0),
        (SECTION_SEQS, &bundle.seqs),
    ] {
        w.put_u8(tag);
        w.put_len(frame.len());
        w.put_bytes(frame);
    }
    w.into_bytes()
}

pub(crate) fn decode_bundle(bytes: &[u8]) -> Result<Bundle, ServeError> {
    let invalid = |detail: String| ServeError::Invalid(detail);
    let mut r = ByteReader::new(bytes);
    let magic = r
        .take(4)
        .map_err(|e| invalid(format!("bundle header: {e}")))?;
    if magic != BUNDLE_MAGIC {
        return Err(invalid("not a cora-serve snapshot bundle (bad magic)".into()));
    }
    let version = r.get_u16().map_err(|e| invalid(e.to_string()))?;
    if version != BUNDLE_VERSION {
        return Err(invalid(format!(
            "unsupported bundle version {version} (this build reads {BUNDLE_VERSION})"
        )));
    }
    let sections = r.get_u8().map_err(|e| invalid(e.to_string()))?;
    let mut f2 = None;
    let mut f0 = None;
    let mut rarity = None;
    let mut hh = None;
    let mut window_f2 = None;
    let mut window_f0 = None;
    let mut seqs = None;
    for _ in 0..sections {
        let tag = r.get_u8().map_err(|e| invalid(e.to_string()))?;
        let len = r.get_len().map_err(|e| invalid(e.to_string()))?;
        let frame = r
            .take(len)
            .map_err(|e| invalid(format!("bundle section {tag}: {e}")))?
            .to_vec();
        let slot = match tag {
            SECTION_F2 => &mut f2,
            SECTION_F0 => &mut f0,
            SECTION_RARITY => &mut rarity,
            SECTION_HH => &mut hh,
            SECTION_WINDOW_F2 => &mut window_f2,
            SECTION_WINDOW_F0 => &mut window_f0,
            SECTION_SEQS => &mut seqs,
            other => return Err(invalid(format!("unknown bundle section tag {other}"))),
        };
        if slot.replace(frame).is_some() {
            return Err(invalid(format!("bundle holds section tag {tag} twice")));
        }
    }
    if !r.is_empty() {
        return Err(invalid(format!(
            "{} trailing bytes after the declared bundle sections",
            r.remaining()
        )));
    }
    match (f2, f0, rarity, hh, window_f2, window_f0, seqs) {
        (
            Some(f2),
            Some(f0),
            Some(rarity),
            Some(hh),
            Some(window_f2),
            Some(window_f0),
            Some(seqs),
        ) => Ok(Bundle { f2, f0, rarity, hh, window_f2, window_f0, seqs }),
        _ => Err(invalid("bundle is missing one or more structure sections".into())),
    }
}

/// Seal the per-writer sequence map as a `cora_core::snapshot` frame
/// ([`SnapshotKind::ServeMeta`]): `u32 count`, then `count × (u64 writer,
/// u64 seq)` sorted by writer for deterministic bytes.
fn encode_seqs_frame(seqs: &HashMap<u64, u64>) -> Vec<u8> {
    let mut pairs: Vec<(u64, u64)> = seqs.iter().map(|(&w, &s)| (w, s)).collect();
    pairs.sort_unstable();
    let mut w = ByteWriter::new();
    w.put_u32(pairs.len() as u32);
    for (writer, seq) in pairs {
        w.put_u64(writer);
        w.put_u64(seq);
    }
    let mut out = Vec::new();
    seal_frame_into(SnapshotKind::ServeMeta, w.as_bytes(), &mut out);
    out
}

fn decode_seqs_frame(bytes: &[u8]) -> Result<HashMap<u64, u64>, ServeError> {
    let payload = open_frame(bytes, SnapshotKind::ServeMeta)?;
    let invalid = |e: cora_sketch::codec::CodecError| {
        ServeError::Invalid(format!("sequence section: {e}"))
    };
    let mut r = ByteReader::new(payload);
    let count = r.get_u32().map_err(invalid)? as usize;
    let mut seqs = HashMap::with_capacity(count);
    for _ in 0..count {
        let writer = r.get_u64().map_err(invalid)?;
        let seq = r.get_u64().map_err(invalid)?;
        if seqs.insert(writer, seq).is_some() {
            return Err(ServeError::Invalid(format!(
                "sequence section lists writer {writer} twice"
            )));
        }
    }
    if !r.is_empty() {
        return Err(ServeError::Invalid(format!(
            "{} trailing bytes after the declared sequence entries",
            r.remaining()
        )));
    }
    Ok(seqs)
}

/// Answer one window query: the estimate plus the pane-aligned resolved span
/// `[resolved_lo, resolved_hi)` it actually covers (all zero while the ring
/// is empty or nothing falls inside the window).
fn window_answer<P: WindowPane>(
    ring: &PaneRing<P>,
    window: u64,
    c: u64,
) -> Result<Vec<(&'static str, Value)>, String> {
    let empty = vec![
        ("value", Value::F64(0.0)),
        ("resolved_lo", Value::U64(0)),
        ("resolved_hi", Value::U64(0)),
    ];
    let Some(now) = ring.t_latest() else {
        return Ok(empty);
    };
    let Some((lo, hi)) = ring.resolved_window(now, window).map_err(|e| e.to_string())? else {
        return Ok(empty);
    };
    let value = ring.query_sliding(window, c).map_err(|e| e.to_string())?;
    Ok(vec![
        ("value", Value::F64(value)),
        ("resolved_lo", Value::U64(lo)),
        ("resolved_hi", Value::U64(hi)),
    ])
}

impl ServerCore {
    /// Build a fresh core (empty sketches) or one restored from a bundle.
    fn build(config: ServeConfig, bundle: Option<&Bundle>) -> Result<Self, ServeError> {
        if config.shards == 0 {
            return Err(ServeError::Invalid("shards must be at least 1".into()));
        }
        if !(config.phi > 0.0 && config.phi < 1.0) {
            return Err(ServeError::Invalid(format!(
                "phi must be in (0,1), got {}",
                config.phi
            )));
        }
        let agg = config.f2_aggregate();
        let f2_config = config.f2_config()?;
        let fresh_windows = || -> Result<WindowState, ServeError> {
            Ok(WindowState {
                f2: windowed_f2(
                    config.epsilon,
                    config.delta,
                    config.y_max,
                    config.max_stream_len,
                    config.seed,
                    config.pane_config(),
                )?,
                f0: windowed_f0(
                    config.epsilon,
                    config.delta,
                    config.x_domain_log2,
                    config.y_max,
                    config.seed,
                    config.pane_config(),
                )?,
                clock: 0,
            })
        };
        let (sharded, aux, windows) = match bundle {
            None => {
                let sharded = ShardedIngest::new(agg, f2_config, config.shards)?;
                let aux = AuxSketches {
                    f0: config.fresh_f0()?,
                    rarity: config.fresh_rarity()?,
                    hh: config.fresh_hh()?,
                    f0_delta: None,
                    rarity_delta: None,
                    hh_delta: None,
                };
                (sharded, aux, fresh_windows()?)
            }
            Some(bundle) => {
                let mismatch = |what: &str| {
                    Err(ServeError::Invalid(format!(
                        "snapshot bundle was taken under a different serve configuration \
                         ({what} differs) — a config plus a bundle must fully determine \
                         a server"
                    )))
                };
                let sharded = ShardedIngest::restore_from(agg, config.shards, &bundle.f2)?;
                if *sharded.config() != f2_config {
                    return mismatch("F2 accuracy, domain, stream bound, or seed");
                }
                let aux = AuxSketches {
                    f0: CorrelatedF0::restore_from(&bundle.f0)?,
                    rarity: CorrelatedRarity::restore_from(&bundle.rarity)?,
                    hh: CorrelatedHeavyHitters::restore_from(&bundle.hh)?,
                    f0_delta: None,
                    rarity_delta: None,
                    hh_delta: None,
                };
                // Every restored structure must match what this config would
                // build fresh — including the fields the F2 check cannot see
                // (x_domain_log2 sizes the samplers, phi the candidate sets).
                if aux.f0.epsilon() != config.epsilon
                    || aux.f0.delta() != config.delta
                    || aux.f0.y_max() != config.y_max
                    || aux.f0.seed() != config.seed
                    || aux.f0.x_domain_log2() != config.x_domain_log2
                {
                    return mismatch("F0 parameters");
                }
                if aux.rarity.epsilon() != config.epsilon
                    || aux.rarity.y_max() != config.y_max
                    || aux.rarity.seed() != config.seed
                    || aux.rarity.x_domain_log2() != config.x_domain_log2
                {
                    return mismatch("rarity parameters");
                }
                if *aux.hh.aggregate()
                    != cora_core::heavy_hitters::F2HeavyAggregate::new(
                        config.epsilon,
                        config.phi,
                        config.seed,
                    )
                    || *aux.hh.config() != f2_config
                {
                    return mismatch("heavy-hitter parameters (phi, accuracy, or seed)");
                }
                let wf2 = WindowedF2::restore_from(config.f2_aggregate(), &bundle.window_f2)?;
                let wf0 = WindowedF0::restore_from(&bundle.window_f0)?;
                let fresh = fresh_windows()?;
                if wf2.template().config() != fresh.f2.template().config()
                    || wf2.pane_config() != fresh.f2.pane_config()
                {
                    return mismatch("windowed F2 parameters or pane geometry");
                }
                let f0t = wf0.template();
                let fresh_f0t = fresh.f0.template();
                if f0t.epsilon() != fresh_f0t.epsilon()
                    || f0t.delta() != fresh_f0t.delta()
                    || f0t.y_max() != fresh_f0t.y_max()
                    || f0t.seed() != fresh_f0t.seed()
                    || f0t.x_domain_log2() != fresh_f0t.x_domain_log2()
                    || wf0.pane_config() != fresh.f0.pane_config()
                {
                    return mismatch("windowed F0 parameters or pane geometry");
                }
                // The arrival clock resumes one past the newest restored tick.
                let clock = wf2.t_latest().map_or(0, |t| t.saturating_add(1));
                let windows = WindowState { f2: wf2, f0: wf0, clock };
                (sharded, aux, windows)
            }
        };
        let seqs = match bundle {
            None => HashMap::new(),
            Some(bundle) => decode_seqs_frame(&bundle.seqs)?,
        };
        let merger = BackgroundMerger::spawn(sharded.reader(), config.merge_every.max(1))?;
        Ok(Self {
            config,
            sharded: Mutex::new(sharded),
            aux: Mutex::new(aux),
            windows: Mutex::new(windows),
            merger,
            seqs: Mutex::new(seqs),
            durable: Mutex::new(None),
            requests: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            journal_batches: AtomicU64::new(0),
            journal_bytes: AtomicU64::new(0),
            auto_snapshots: AtomicU64::new(0),
            snapshot_errors: AtomicU64::new(0),
            repl_cut_items: AtomicU64::new(0),
        })
    }

    /// This server's construction parameters (the replicator reads the
    /// replication target and fingerprint from here).
    pub(crate) fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Turn on replication tracking: per-shard `F_2` deltas in the sharded
    /// ingest plus delta copies of the auxiliary sketches. Everything
    /// already ingested stays out of the deltas (the first shipped cut is a
    /// full snapshot, so nothing is lost). Idempotent; called once at start
    /// when [`ServeConfig::replicate`] is set.
    pub(crate) fn enable_replication(&self) -> Result<(), ServeError> {
        let mut sharded = self.sharded.lock().unwrap_or_else(PoisonError::into_inner);
        let mut aux = self.aux.lock().unwrap_or_else(PoisonError::into_inner);
        sharded.enable_delta_tracking()?;
        if aux.f0_delta.is_none() {
            aux.f0_delta = Some(self.config.fresh_f0()?);
            aux.rarity_delta = Some(self.config.fresh_rarity()?);
            aux.hh_delta = Some(self.config.fresh_hh()?);
        }
        Ok(())
    }

    /// Cut one replication unit under the ingest lock order (`sharded` →
    /// `aux`), so the cut is atomic with respect to batches: every tuple
    /// lands entirely in this cut or entirely in the next one.
    ///
    /// `full` builds a replacement snapshot of the live structures
    /// (`g_from = 0`); otherwise an incremental delta covering exactly the
    /// tuples since the previous cut. Returns `Ok(None)` when nothing new
    /// arrived and `full` is false — the generation counter does not
    /// advance, so an idle server never creates a hole in the delta chain.
    pub(crate) fn repl_cut(&self, full: bool) -> Result<Option<ReplCut>, ServeError> {
        let fingerprint = self.config.replication_fingerprint();
        let mut sharded = self.sharded.lock().unwrap_or_else(PoisonError::into_inner);
        let mut aux = self.aux.lock().unwrap_or_else(PoisonError::into_inner);
        if !sharded.delta_tracking_enabled() {
            return Err(ServeError::Invalid(
                "replication tracking is not enabled on this server".into(),
            ));
        }
        // `items_accepted` needs the flush barrier to be exact, but staleness
        // here only delays a cut by one interval — never loses tuples.
        sharded.flush();
        if !full && sharded.items_accepted() == self.repl_cut_items.load(Ordering::Acquire) {
            return Ok(None);
        }
        // Build every replacement before swapping anything, so a failed
        // allocation leaves the trackers untouched and consistent.
        let fresh_f0 = self.config.fresh_f0()?;
        let fresh_rarity = self.config.fresh_rarity()?;
        let fresh_hh = self.config.fresh_hh()?;
        let (g_from_cut, g_to, f2_delta) = sharded.take_delta()?;
        let f0_delta = aux.f0_delta.replace(fresh_f0).expect("replication enabled");
        let rarity_delta = aux.rarity_delta.replace(fresh_rarity).expect("replication enabled");
        let hh_delta = aux.hh_delta.replace(fresh_hh).expect("replication enabled");
        self.repl_cut_items.store(sharded.items_accepted(), Ordering::Release);
        let (g_from, f2, f0, rarity, hh) = if full {
            // Replacement cut: snapshot the live structures. The delta
            // trackers were still reset above, so the next incremental cut
            // chains cleanly from `g_to`.
            (
                0,
                sharded.snapshot()?,
                aux.f0.snapshot(),
                aux.rarity.snapshot(),
                aux.hh.snapshot(),
            )
        } else {
            (
                g_from_cut,
                f2_delta.snapshot(),
                f0_delta.snapshot(),
                rarity_delta.snapshot(),
                hh_delta.snapshot(),
            )
        };
        drop(aux);
        drop(sharded);
        let header = DeltaHeader { g_from, g_to, fingerprint };
        let mut frame = Vec::new();
        seal_delta_into(
            &header,
            &[
                (REPL_SECTION_F2, f2.as_slice()),
                (REPL_SECTION_F0, f0.as_slice()),
                (REPL_SECTION_RARITY, rarity.as_slice()),
                (REPL_SECTION_HH, hh.as_slice()),
            ],
            &mut frame,
        );
        Ok(Some(ReplCut { g_from, g_to, frame }))
    }

    /// Encode the full bundle from already-locked structures, so the caller
    /// chooses the consistency scope (the plain `snapshot` op versus a
    /// durable rotation that must also swap the journal atomically).
    fn bundle_bytes_locked(
        sharded: &mut ShardedIngest<F2Aggregate>,
        aux: &AuxSketches,
        windows: &WindowState,
        seqs: &HashMap<u64, u64>,
    ) -> Result<Vec<u8>, ServeError> {
        let bundle = Bundle {
            f2: sharded.snapshot()?,
            f0: aux.f0.snapshot(),
            rarity: aux.rarity.snapshot(),
            hh: aux.hh.snapshot(),
            window_f2: windows.f2.snapshot(),
            window_f0: windows.f0.snapshot(),
            seqs: encode_seqs_frame(seqs),
        };
        Ok(encode_bundle(&bundle))
    }

    fn snapshot_bundle(&self) -> Result<Vec<u8>, ServeError> {
        // Hold the locks (sharded before aux before windows before seqs,
        // like the ingest path) across the whole bundle, so every section
        // describes the same stream prefix — a bundle must fully determine
        // a server.
        let mut sharded = self.sharded.lock().unwrap_or_else(PoisonError::into_inner);
        let aux = self.aux.lock().unwrap_or_else(PoisonError::into_inner);
        let windows = self.windows.lock().unwrap_or_else(PoisonError::into_inner);
        let seqs = self.seqs.lock().unwrap_or_else(PoisonError::into_inner);
        let bytes = Self::bundle_bytes_locked(&mut sharded, &aux, &windows, &seqs)?;
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(bytes)
    }

    /// Install the durability machinery: open the journal for `generation`,
    /// publish the matching snapshot of the current (recovered) state, and
    /// prune generations older than the `retain_from` fallback. Called once
    /// at start, after recovery replay and before any connection is served.
    fn open_durable(
        &self,
        storage: &Arc<dyn Storage>,
        config: &DurabilityConfig,
        generation: u64,
        retain_from: Option<u64>,
    ) -> Result<(), ServeError> {
        // Journal before snapshot: if we crash between the two, recovery
        // restores the previous snapshot and replays straight through this
        // (empty) journal — no batch can land in a file recovery won't read.
        let journal = JournalWriter::create(storage.as_ref(), &config.dir, generation)?;
        let bytes = self.snapshot_bundle()?;
        storage.write_atomic(&snapshot_path(&config.dir, generation), &bytes)?;
        if let Some(floor) = retain_from {
            Self::prune_generations(storage, &config.dir, floor);
        }
        let state = DurableState {
            storage: Arc::clone(storage),
            dir: config.dir.clone(),
            fsync: config.fsync_each_batch,
            journal,
            last_good: generation,
            tuples_since: 0,
            last_snapshot: Instant::now(),
        };
        *self.durable.lock().unwrap_or_else(PoisonError::into_inner) = Some(state);
        Ok(())
    }

    /// Best-effort retention: delete every generation file strictly older
    /// than `floor` (the previous good snapshot stays as the fallback).
    fn prune_generations(storage: &Arc<dyn Storage>, dir: &std::path::Path, floor: u64) {
        let Ok(listing) = list_generations(storage.as_ref(), dir) else {
            return;
        };
        for &g in listing.snapshots.iter().filter(|&&g| g < floor) {
            let _ = storage.remove(&snapshot_path(dir, g));
        }
        for &g in listing.journals.iter().filter(|&&g| g < floor) {
            let _ = storage.remove(&journal_path(dir, g));
        }
    }

    /// Rotate the durable generation: publish a snapshot of the current
    /// state and start a fresh journal for the batches after it. Returns
    /// the new generation and the snapshot's size in bytes.
    ///
    /// Failure leaves the previous generation fully in charge (the old
    /// journal keeps absorbing batches unless it was already poisoned) and
    /// is counted in `snapshot_errors`.
    fn durable_snapshot(&self, auto: bool) -> Result<(u64, u64), ServeError> {
        // Same lock order as ingest; holding all of them across the
        // journal swap means every batch lands either before the snapshot
        // (in its bytes) or after it (in the new journal), never both.
        let mut sharded = self.sharded.lock().unwrap_or_else(PoisonError::into_inner);
        let aux = self.aux.lock().unwrap_or_else(PoisonError::into_inner);
        let windows = self.windows.lock().unwrap_or_else(PoisonError::into_inner);
        let seqs = self.seqs.lock().unwrap_or_else(PoisonError::into_inner);
        let mut durable = self.durable.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(ds) = durable.as_mut() else {
            return Err(ServeError::Invalid(
                "durability is not configured on this server".into(),
            ));
        };
        let fail = |this: &Self, e: ServeError| {
            this.snapshot_errors.fetch_add(1, Ordering::Relaxed);
            Err(e)
        };
        let new_gen = ds.journal.generation() + 1;
        let prev_good = ds.last_good;
        let bytes = match Self::bundle_bytes_locked(&mut sharded, &aux, &windows, &seqs) {
            Ok(bytes) => bytes,
            Err(e) => return fail(self, e),
        };
        // Fresh journal first, snapshot second: a crash between the two
        // leaves snap-(prev) + a full journal-(old) + an empty
        // journal-(new), which recovery replays losslessly. The reverse
        // order would strand post-snapshot batches in a journal older than
        // the restored snapshot.
        let journal = match JournalWriter::create(ds.storage.as_ref(), &ds.dir, new_gen) {
            Ok(journal) => journal,
            Err(e) => return fail(self, ServeError::Io(e)),
        };
        if let Err(e) =
            ds.storage.write_atomic(&snapshot_path(&ds.dir, new_gen), &bytes)
        {
            // The unused journal-(new) file stays behind; recovery replays
            // it as empty and the next rotation attempt recreates it.
            return fail(self, ServeError::Io(e));
        }
        ds.journal = journal;
        ds.last_good = new_gen;
        ds.tuples_since = 0;
        ds.last_snapshot = Instant::now();
        Self::prune_generations(&ds.storage, &ds.dir, prev_good);
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        if auto {
            self.auto_snapshots.fetch_add(1, Ordering::Relaxed);
        }
        Ok((new_gen, bytes.len() as u64))
    }

    /// Whether the background snapshotter should rotate now.
    fn snapshot_due(&self, config: &DurabilityConfig) -> bool {
        let durable = self.durable.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(ds) = durable.as_ref() else {
            return false;
        };
        let by_tuples = config.snapshot_every_tuples > 0
            && ds.tuples_since >= config.snapshot_every_tuples;
        let by_time = config.snapshot_interval_ms > 0
            && ds.last_snapshot.elapsed() >= Duration::from_millis(config.snapshot_interval_ms)
            && ds.journal.batches() > 0;
        // A poisoned journal is rotated out as soon as the snapshotter
        // notices, restoring write availability without operator action.
        by_tuples || by_time || ds.journal.is_poisoned()
    }

    /// Ingest one validated batch into every hosted structure — the shared
    /// semantic path behind both the JSON `ingest` op and the binary
    /// protocol's zero-per-tuple-allocation fast path (which decodes frames
    /// straight into reusable scratch slices and calls this). Recovery
    /// replay uses it too: before `open_durable` installs the journal, the
    /// durable slot is `None`, so replayed batches are not re-journaled.
    ///
    /// `ts` carries explicit per-tuple timestamps (same length as `tuples`)
    /// or is empty, in which case the arrival clock stamps each tuple.
    /// `seq` is the client's `(writer, seq)` idempotency pair: a batch at
    /// or below the writer's high-water mark answers
    /// `accepted: 0, duplicate: 1` without being applied or journaled.
    fn ingest_tuples(&self, tuples: &[(u64, u64)], ts: &[u64], seq: Option<(u64, u64)>) -> Reply {
        let fail = Reply::sketch_error;
        debug_assert!(ts.is_empty() || ts.len() == tuples.len());
        // Validate atomically against the *configured* y_max so all hosted
        // structures accept or reject a batch together.
        if let Some(&(_, y)) = tuples.iter().find(|&&(_, y)| y > self.config.y_max) {
            return Reply::request_error(format!(
                "y {y} exceeds configured y_max {}",
                self.config.y_max
            ));
        }
        {
            // All locks are held across the whole batch (sharded before aux
            // before windows before seqs before durable, the order the
            // snapshot paths use too), so a concurrent snapshot can never
            // capture the structures at different stream prefixes, and the
            // journal receives batches in exactly apply order.
            let mut sharded = self.sharded.lock().unwrap_or_else(PoisonError::into_inner);
            let mut aux = self.aux.lock().unwrap_or_else(PoisonError::into_inner);
            let mut windows = self.windows.lock().unwrap_or_else(PoisonError::into_inner);
            let mut seqs = self.seqs.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some((writer, s)) = seq {
                if seqs.get(&writer).is_some_and(|&high| s <= high) {
                    return Reply::Ok(vec![
                        ("accepted", Value::U64(0)),
                        ("duplicate", Value::U64(1)),
                    ]);
                }
            }
            {
                // Write-ahead: the batch reaches stable storage before any
                // in-memory structure sees it, so the Ok ack below is a
                // durability receipt. A journal failure (including a
                // poisoned journal awaiting rotation) refuses the batch
                // with a structured io error and applies nothing.
                let mut durable = self.durable.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(ds) = durable.as_mut() {
                    let before = ds.journal.bytes();
                    if let Err(e) = ds.journal.append_batch(tuples, ts, seq, ds.fsync) {
                        return Reply::io_error(format!("journal append failed: {e}"));
                    }
                    ds.tuples_since += tuples.len() as u64;
                    self.journal_batches.fetch_add(1, Ordering::Relaxed);
                    self.journal_bytes
                        .fetch_add(ds.journal.bytes() - before, Ordering::Relaxed);
                }
            }
            if let Err(e) = sharded.ingest(tuples) {
                return fail(e.to_string());
            }
            let aux = &mut *aux;
            for &(x, y) in tuples {
                // The replication deltas (present while replication is on)
                // see exactly the tuples the live sketches see, under the
                // same lock — a cut can never split a batch.
                if let Err(e) = aux
                    .f0
                    .insert(x, y)
                    .and_then(|()| aux.rarity.insert(x, y))
                    .and_then(|()| aux.hh.insert(x, y))
                    .and_then(|()| match aux.f0_delta.as_mut() {
                        Some(d) => d.insert(x, y),
                        None => Ok(()),
                    })
                    .and_then(|()| match aux.rarity_delta.as_mut() {
                        Some(d) => d.insert(x, y),
                        None => Ok(()),
                    })
                    .and_then(|()| match aux.hh_delta.as_mut() {
                        Some(d) => d.insert(x, y),
                        None => Ok(()),
                    })
                {
                    return fail(format!("auxiliary sketch rejected a tuple: {e}"));
                }
            }
            // Windowed structures: explicit per-tuple timestamps when the
            // client sent them, the arrival counter otherwise.
            let windows = &mut *windows;
            for (i, &(x, y)) in tuples.iter().enumerate() {
                let t = match ts.get(i) {
                    Some(&t) => {
                        windows.clock = windows.clock.max(t.saturating_add(1));
                        t
                    }
                    None => {
                        let t = windows.clock;
                        windows.clock = windows.clock.saturating_add(1);
                        t
                    }
                };
                if let Err(e) = windows
                    .f2
                    .observe(x, y, t)
                    .and_then(|()| windows.f0.observe(x, y, t))
                {
                    return fail(format!("windowed structure rejected a tuple: {e}"));
                }
            }
            // Raise the high-water mark only after the batch is journaled
            // and applied, so a failed batch can be retried with the same
            // sequence number.
            if let Some((writer, s)) = seq {
                seqs.insert(writer, s);
            }
        }
        let n = tuples.len() as u64;
        self.accepted.fetch_add(n, Ordering::Relaxed);
        Reply::Ok(vec![("accepted", Value::U64(n))])
    }

    /// Handle one request; the bool asks the listener to shut down. The
    /// reply is protocol-agnostic — the connection loop renders it as a JSON
    /// line or a binary frame to match the client.
    fn handle(&self, request: Request) -> (Reply, bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let fail = |e: String| (Reply::sketch_error(e), false);
        match request {
            Request::Ping => (Reply::ok(), false),
            Request::Config => {
                let c = &self.config;
                (
                    Reply::Ok(vec![
                        ("epsilon", Value::F64(c.epsilon)),
                        ("delta", Value::F64(c.delta)),
                        ("y_max", Value::U64(c.y_max)),
                        ("max_stream_len", Value::U64(c.max_stream_len)),
                        ("seed", Value::U64(c.seed)),
                        ("shards", Value::U64(c.shards as u64)),
                        ("merge_every", Value::U64(c.merge_every)),
                        ("phi", Value::F64(c.phi)),
                        ("x_domain_log2", Value::U64(u64::from(c.x_domain_log2))),
                        ("pane_ticks", Value::U64(c.pane_ticks)),
                        ("pane_k", Value::U64(c.pane_k as u64)),
                        (
                            "pane_retention",
                            c.pane_retention.map_or(Value::Null, Value::U64),
                        ),
                        ("max_connections", Value::U64(c.max_connections as u64)),
                    ]),
                    false,
                )
            }
            Request::Ingest { xs, ys, ts, seq } => {
                let tuples: Vec<(u64, u64)> = xs.into_iter().zip(ys).collect();
                (
                    self.ingest_tuples(&tuples, ts.as_deref().unwrap_or(&[]), seq),
                    false,
                )
            }
            Request::Flush => {
                self.sharded
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .flush();
                self.merger.refresh();
                (Reply::ok(), false)
            }
            Request::QueryF2 { c } => match self.merger.current().sketch().query(c) {
                Ok(value) => (Reply::Ok(vec![("value", Value::F64(value))]), false),
                Err(e) => fail(e.to_string()),
            },
            Request::QueryF0 { c } => {
                let aux = self.aux.lock().unwrap_or_else(PoisonError::into_inner);
                match aux.f0.query(c.min(self.config.y_max)) {
                    Ok(value) => (Reply::Ok(vec![("value", Value::F64(value))]), false),
                    Err(e) => fail(e.to_string()),
                }
            }
            Request::QueryRarity { c } => {
                let aux = self.aux.lock().unwrap_or_else(PoisonError::into_inner);
                match aux.rarity.query(c.min(self.config.y_max)) {
                    Ok(value) => (Reply::Ok(vec![("value", Value::F64(value))]), false),
                    Err(e) => fail(e.to_string()),
                }
            }
            Request::QueryHeavyHitters { c, phi } => {
                let aux = self.aux.lock().unwrap_or_else(PoisonError::into_inner);
                match aux.hh.query_heavy_hitters(c, phi) {
                    Ok(hitters) => {
                        let items: Vec<u64> = hitters.iter().map(|h| h.item).collect();
                        let freqs: Vec<f64> = hitters.iter().map(|h| h.frequency).collect();
                        let shares: Vec<f64> = hitters.iter().map(|h| h.share).collect();
                        (
                            Reply::Ok(vec![
                                ("items", Value::U64Array(items)),
                                ("frequencies", Value::F64Array(freqs)),
                                ("shares", Value::F64Array(shares)),
                            ]),
                            false,
                        )
                    }
                    Err(e) => fail(e.to_string()),
                }
            }
            Request::WindowF2 { window, c } => {
                let windows = self.windows.lock().unwrap_or_else(PoisonError::into_inner);
                match window_answer(&windows.f2, window, c.min(self.config.y_max)) {
                    Ok(fields) => (Reply::Ok(fields), false),
                    Err(e) => fail(e),
                }
            }
            Request::WindowF0 { window, c } => {
                let windows = self.windows.lock().unwrap_or_else(PoisonError::into_inner);
                match window_answer(&windows.f0, window, c.min(self.config.y_max)) {
                    Ok(fields) => (Reply::Ok(fields), false),
                    Err(e) => fail(e),
                }
            }
            Request::Stats => {
                let composite = self.merger.current();
                let stats = composite.sketch().stats();
                let accepted = self
                    .sharded
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .items_accepted();
                let (window_panes, window_late_dropped, window_clock) = {
                    let windows = self.windows.lock().unwrap_or_else(PoisonError::into_inner);
                    (windows.f2.pane_count(), windows.f2.late_dropped(), windows.clock)
                };
                let (durable_on, generation, journal_poisoned) = {
                    let durable = self.durable.lock().unwrap_or_else(PoisonError::into_inner);
                    match durable.as_ref() {
                        Some(ds) => (1, ds.journal.generation(), u64::from(ds.journal.is_poisoned())),
                        None => (0, 0, 0),
                    }
                };
                (
                    Reply::Ok(vec![
                        ("requests", Value::U64(self.requests.load(Ordering::Relaxed))),
                        ("items_accepted", Value::U64(accepted)),
                        ("composite_items", Value::U64(stats.items_processed)),
                        ("composite_epoch", Value::U64(composite.epoch())),
                        (
                            "staleness_batches",
                            Value::U64(self.merger.staleness_batches()),
                        ),
                        ("singleton_buckets", Value::U64(stats.singleton_buckets as u64)),
                        ("dyadic_buckets", Value::U64(stats.dyadic_buckets as u64)),
                        ("stored_tuples", Value::U64(stats.stored_tuples as u64)),
                        ("space_bytes", Value::U64(stats.space_bytes as u64)),
                        (
                            "snapshots_taken",
                            Value::U64(self.snapshots.load(Ordering::Relaxed)),
                        ),
                        ("window_panes", Value::U64(window_panes as u64)),
                        ("window_late_dropped", Value::U64(window_late_dropped)),
                        ("window_clock", Value::U64(window_clock)),
                        ("durable", Value::U64(durable_on)),
                        ("generation", Value::U64(generation)),
                        ("journal_poisoned", Value::U64(journal_poisoned)),
                        (
                            "journal_batches",
                            Value::U64(self.journal_batches.load(Ordering::Relaxed)),
                        ),
                        (
                            "journal_bytes",
                            Value::U64(self.journal_bytes.load(Ordering::Relaxed)),
                        ),
                        (
                            "auto_snapshots",
                            Value::U64(self.auto_snapshots.load(Ordering::Relaxed)),
                        ),
                        (
                            "snapshot_errors",
                            Value::U64(self.snapshot_errors.load(Ordering::Relaxed)),
                        ),
                    ]),
                    false,
                )
            }
            Request::Snapshot { path } if path.is_empty() => {
                // Empty path = durable rotation: publish the next snapshot
                // generation and swap in a fresh journal.
                match self.durable_snapshot(false) {
                    Ok((generation, bytes)) => (
                        Reply::Ok(vec![
                            ("generation", Value::U64(generation)),
                            ("bytes", Value::U64(bytes)),
                        ]),
                        false,
                    ),
                    Err(ServeError::Io(e)) => (
                        Reply::io_error(format!("snapshot rotation failed: {e}")),
                        false,
                    ),
                    Err(ServeError::Invalid(e)) => (Reply::request_error(e), false),
                    Err(e) => (Reply::server_error(e.to_string()), false),
                }
            }
            Request::Snapshot { path } => match self.snapshot_bundle() {
                Ok(bytes) => match std::fs::write(&path, &bytes) {
                    Ok(()) => (
                        Reply::Ok(vec![("bytes", Value::U64(bytes.len() as u64))]),
                        false,
                    ),
                    Err(e) => (
                        Reply::io_error(format!("could not write snapshot to {path:?}: {e}")),
                        false,
                    ),
                },
                Err(ServeError::Io(e)) => (
                    Reply::io_error(format!("snapshot failed: {e}")),
                    false,
                ),
                Err(e) => fail(e.to_string()),
            },
            Request::Auth { .. } => {
                // The transport layer intercepts `auth` before dispatch (the
                // gate is per-connection state); reaching here means the op
                // was issued where it has no meaning.
                (
                    Reply::request_error(
                        "auth is handled by the connection transport before dispatch",
                    ),
                    false,
                )
            }
            Request::SetF0 { .. } | Request::Streams => (
                Reply::request_error(
                    "set-expression queries are answered by an aggregator node \
                     (cora_serve_agg), not by an ingest server",
                ),
                false,
            ),
            Request::ReplHello { .. }
            | Request::ReplDelta { .. }
            | Request::ReplSnapshot { .. } => (
                Reply::request_error(
                    "replication frames are accepted by an aggregator node \
                     (cora_serve_agg), not by an ingest server",
                ),
                false,
            ),
            Request::Shutdown => (Reply::ok(), true),
        }
    }
}

/// The protocol-agnostic service surface a connection dispatches into —
/// implemented by [`ServerCore`] (an ingest node) and by the aggregator
/// core in [`crate::cluster`]. The connection state machine, the worker
/// pool, and the acceptor are generic over this trait, so both node kinds
/// share one transport stack (first-byte protocol sniffing, auth gating,
/// pipelining, connection limits).
pub(crate) trait ServiceCore: Send + Sync + 'static {
    /// The configured shared-secret token, when authentication is required.
    fn auth_token(&self) -> Option<&str>;
    /// Count one request (called by the transport for requests it answers
    /// itself: `auth` handling and unauthenticated rejections).
    fn note_request(&self);
    /// Handle one request; the bool asks the listener to shut down.
    fn handle(&self, request: Request) -> (Reply, bool);
    /// The binary ingest fast path (tuples decoded into connection scratch).
    fn ingest_binary(&self, tuples: &[(u64, u64)], ts: &[u64], seq: Option<(u64, u64)>) -> Reply;
}

impl ServiceCore for ServerCore {
    fn auth_token(&self) -> Option<&str> {
        self.config.auth_token.as_deref()
    }

    fn note_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    fn handle(&self, request: Request) -> (Reply, bool) {
        ServerCore::handle(self, request)
    }

    fn ingest_binary(&self, tuples: &[(u64, u64)], ts: &[u64], seq: Option<(u64, u64)>) -> Reply {
        self.ingest_tuples(tuples, ts, seq)
    }
}

/// Compare a presented auth token against the configured one without an
/// early exit on the first differing byte — neither the token length nor
/// its content leaks through response timing.
pub(crate) fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

/// Poll interval for the accept loop's shutdown checks and the deepest
/// idle-sleep tier of the connection workers.
const NET_TICK: Duration = Duration::from_millis(50);

/// How many scheduler-yield spins an active worker burns before it starts
/// sleeping — long enough to cover a client's turnaround on loopback, so
/// request/response ping-pong never eats a sleep latency.
const IDLE_SPINS: u32 = 256;

/// First sleep tier after the spin budget; doubles up to [`NET_TICK`].
const IDLE_SLEEP_FLOOR: Duration = Duration::from_micros(200);

/// The structured refusal an unauthenticated request is answered with while
/// an auth token is configured.
const UNAUTHENTICATED: &str =
    "authentication required: send the auth op with the shared token first";

/// Which protocol a connection speaks, decided once by its first byte.
enum ConnMode {
    /// Nothing received yet.
    Sniffing,
    /// Newline-delimited JSON (first byte `{` or leading whitespace).
    Json,
    /// Length-prefixed binary frames (first byte [`wire::MAGIC`]).
    Binary,
}

/// What one service pass over a connection produced.
enum ConnStep {
    /// Bytes moved or requests were handled — keep spinning.
    Progress,
    /// Nothing to do right now.
    Idle,
    /// Connection finished (client closed, fatal error, or protocol abuse).
    Close,
}

/// Per-connection state owned by a worker: the socket (non-blocking), the
/// inbound byte buffer, pending outbound bytes, and the binary ingest
/// scratch that makes frame decoding allocation-free per tuple.
struct Conn {
    stream: TcpStream,
    mode: ConnMode,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    outpos: usize,
    /// Close once `outbuf` has drained (protocol abuse or shutdown ack).
    close_after_flush: bool,
    /// Whether this connection has passed the auth gate. Starts `true`
    /// when the core has no token configured; otherwise flips on a
    /// successful `auth` op.
    authed: bool,
    /// Reused binary-ingest decode targets.
    tuples: Vec<(u64, u64)>,
    ts: Vec<u64>,
}

impl Conn {
    fn new(stream: TcpStream, authed: bool) -> Self {
        Self {
            stream,
            mode: ConnMode::Sniffing,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            close_after_flush: false,
            authed,
            tuples: Vec::new(),
            ts: Vec::new(),
        }
    }

    /// Dispatch one parsed request through the per-connection auth gate:
    /// `auth` is consumed here (constant-time token compare), and while a
    /// token is configured every other op on an unauthenticated connection
    /// is refused with a structured `request` error — the connection stays
    /// open so the client can authenticate and retry.
    fn dispatch<C: ServiceCore>(&mut self, core: &C, request: Request) -> (Reply, bool) {
        if let Request::Auth { token } = &request {
            core.note_request();
            let reply = match core.auth_token() {
                // No token configured: accept the op as a no-op so clients
                // can send auth unconditionally.
                None => Reply::ok(),
                Some(expected) if constant_time_eq(expected.as_bytes(), token.as_bytes()) => {
                    self.authed = true;
                    Reply::ok()
                }
                Some(_) => Reply::request_error("authentication failed: token mismatch"),
            };
            return (reply, false);
        }
        if !self.authed {
            core.note_request();
            return (Reply::request_error(UNAUTHENTICATED), false);
        }
        core.handle(request)
    }

    fn queue(&mut self, bytes: &[u8]) {
        self.outbuf.extend_from_slice(bytes);
    }

    fn queue_json_line(&mut self, line: &str) {
        self.outbuf.extend_from_slice(line.as_bytes());
        self.outbuf.push(b'\n');
    }

    /// Push pending output to the socket without blocking. Returns false on
    /// a fatal socket error.
    fn flush_out(&mut self, progress: &mut bool) -> bool {
        while self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.outpos += n;
                    *progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.outpos == self.outbuf.len() && self.outpos > 0 {
            self.outbuf.clear();
            self.outpos = 0;
        }
        true
    }

    /// Read whatever the socket has ready (bounded per pass so one firehose
    /// client cannot starve its worker's other connections). Returns false
    /// when the connection is done (EOF or fatal error).
    fn fill_in(&mut self, chunk: &mut [u8], progress: &mut bool) -> bool {
        for _ in 0..16 {
            match self.stream.read(chunk) {
                Ok(0) => return false,
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    *progress = true;
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    /// One service pass: flush, read, then handle every complete message
    /// sitting in the inbound buffer.
    fn step<C: ServiceCore>(
        &mut self,
        core: &C,
        shutdown: &Arc<AtomicBool>,
        listener_addr: SocketAddr,
        chunk: &mut [u8],
    ) -> ConnStep {
        let mut progress = false;
        if !self.flush_out(&mut progress) {
            return ConnStep::Close;
        }
        if self.close_after_flush {
            return if self.outpos < self.outbuf.len() {
                ConnStep::Idle
            } else {
                ConnStep::Close
            };
        }
        if !self.fill_in(chunk, &mut progress) {
            // Serve whatever complete requests arrived before EOF, then
            // close once the answers are flushed.
            self.close_after_flush = true;
        }
        let mut pos = 0usize;
        loop {
            match self.mode {
                ConnMode::Sniffing => {
                    // Skip leading whitespace (blank lines between JSON
                    // requests would land here on a reconnect-free client).
                    while pos < self.inbuf.len()
                        && matches!(self.inbuf[pos], b' ' | b'\t' | b'\r' | b'\n')
                    {
                        pos += 1;
                    }
                    match self.inbuf.get(pos) {
                        None => break,
                        Some(&wire::MAGIC) => self.mode = ConnMode::Binary,
                        Some(&b'{') => self.mode = ConnMode::Json,
                        Some(&other) => {
                            self.queue_json_line(&protocol::error(&format!(
                                "unrecognized protocol: first byte 0x{other:02X} is neither \
                                 JSON ('{{') nor a binary frame (0x{:02X})",
                                wire::MAGIC
                            )));
                            self.close_after_flush = true;
                            break;
                        }
                    }
                }
                ConnMode::Json => {
                    let Some(nl) = self.inbuf[pos..].iter().position(|&b| b == b'\n') else {
                        if self.inbuf.len() - pos > wire::MAX_FRAME_BYTES {
                            self.queue_json_line(&protocol::error(&format!(
                                "request line exceeds the {}-byte cap",
                                wire::MAX_FRAME_BYTES
                            )));
                            self.close_after_flush = true;
                        }
                        break;
                    };
                    let line = &self.inbuf[pos..pos + nl];
                    pos += nl + 1;
                    let text = String::from_utf8_lossy(line);
                    let trimmed = text.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    progress = true;
                    let (reply, stop) = match Request::parse(trimmed) {
                        Ok(request) => self.dispatch(core, request),
                        Err(e) => (Reply::request_error(format!("bad request: {e}")), false),
                    };
                    let line = reply.render_json();
                    self.queue_json_line(&line);
                    if stop {
                        self.begin_shutdown(shutdown, listener_addr);
                        break;
                    }
                }
                ConnMode::Binary => {
                    let avail = &self.inbuf[pos..];
                    if avail.len() < wire::HEADER_BYTES {
                        break;
                    }
                    let header_bytes: &[u8; wire::HEADER_BYTES] =
                        avail[..wire::HEADER_BYTES].try_into().expect("header size");
                    let header = match wire::parse_header(header_bytes) {
                        Ok(header) => header,
                        Err(e) => {
                            // Framing can't be trusted past a bad header
                            // (magic, version, or a hostile length — which
                            // is rejected before any payload is buffered).
                            self.queue(&wire::encode_reply(
                                header_bytes[2],
                                &Reply::request_error(e.to_string()),
                            ));
                            self.close_after_flush = true;
                            progress = true;
                            break;
                        }
                    };
                    if avail.len() < wire::HEADER_BYTES + header.len {
                        break; // incomplete frame; wait for more bytes
                    }
                    let payload_start = pos + wire::HEADER_BYTES;
                    pos = payload_start + header.len;
                    progress = true;
                    let no_ack = header.flags & wire::FLAG_NO_ACK != 0;
                    match Opcode::from_byte(header.opcode) {
                        Some(Opcode::Ingest) if self.authed => {
                            // The hot path: decode straight into this
                            // connection's scratch, no per-tuple allocation,
                            // and skip the ack entirely when pipelined.
                            let payload = &self.inbuf[payload_start..pos];
                            let reply = match wire::decode_ingest_into(
                                payload,
                                &mut self.tuples,
                                &mut self.ts,
                            ) {
                                Ok(meta) => {
                                    core.note_request();
                                    core.ingest_binary(&self.tuples, &self.ts, meta.seq)
                                }
                                Err(e) => Reply::request_error(format!("bad ingest frame: {e}")),
                            };
                            let suppress = no_ack && matches!(reply, Reply::Ok(_));
                            if !suppress {
                                self.queue(&wire::encode_reply(header.opcode, &reply));
                            }
                        }
                        Some(Opcode::Ingest) => {
                            // Unauthenticated fast-path ingest is refused
                            // without decoding; errors are never suppressed,
                            // so even a NO_ACK pipeline hears about it.
                            core.note_request();
                            self.queue(&wire::encode_reply(
                                header.opcode,
                                &Reply::request_error(UNAUTHENTICATED),
                            ));
                        }
                        Some(opcode) => {
                            let payload = &self.inbuf[payload_start..pos];
                            let (reply, stop) = match wire::decode_request(opcode, payload) {
                                Ok(request) => self.dispatch(core, request),
                                Err(e) => {
                                    (Reply::request_error(format!("bad request frame: {e}")), false)
                                }
                            };
                            // Replication requests are acknowledged with the
                            // dedicated REPL_ACK opcode instead of an echo.
                            let reply_opcode = match opcode {
                                Opcode::ReplHello | Opcode::ReplDelta | Opcode::ReplSnapshot => {
                                    Opcode::ReplAck as u8
                                }
                                _ => header.opcode,
                            };
                            let suppress = no_ack && matches!(reply, Reply::Ok(_)) && !stop;
                            if !suppress {
                                self.queue(&wire::encode_reply(reply_opcode, &reply));
                            }
                            if stop {
                                self.begin_shutdown(shutdown, listener_addr);
                                break;
                            }
                        }
                        None => {
                            // A well-formed frame with an unknown opcode:
                            // answer and keep serving, like the JSON
                            // protocol's unknown-op error.
                            self.queue(&wire::encode_reply(
                                header.opcode,
                                &Reply::request_error(format!(
                                    "unknown opcode 0x{:02X}",
                                    header.opcode
                                )),
                            ));
                        }
                    }
                }
            }
        }
        if pos > 0 {
            self.inbuf.drain(..pos);
        }
        if !self.flush_out(&mut progress) {
            return ConnStep::Close;
        }
        if self.close_after_flush && self.outpos >= self.outbuf.len() {
            return ConnStep::Close;
        }
        if progress {
            ConnStep::Progress
        } else {
            ConnStep::Idle
        }
    }

    /// The shutdown op: deliver the ack, then stop the listener. The ack is
    /// flushed with a short blocking retry so the flag flip can't race the
    /// worker teardown and eat the response.
    fn begin_shutdown(&mut self, shutdown: &Arc<AtomicBool>, listener_addr: SocketAddr) {
        let deadline = std::time::Instant::now() + NET_TICK;
        let mut progress = false;
        while self.outpos < self.outbuf.len() && std::time::Instant::now() < deadline {
            if !self.flush_out(&mut progress) {
                break;
            }
            if self.outpos < self.outbuf.len() {
                thread::sleep(Duration::from_micros(100));
            }
        }
        shutdown.store(true, Ordering::Release);
        // The acceptor may be blocked in accept(); wake it with a throwaway
        // connection so the shutdown op alone stops the listener.
        let _ = TcpStream::connect(listener_addr);
        self.close_after_flush = true;
    }
}

/// A connection worker: owns a set of sockets, polls them with non-blocking
/// reads, and escalates from spinning to sleeping as they go idle. A fixed
/// pool of these replaces one-thread-per-connection — thousands of idle
/// clients cost failed `read` syscalls on a few threads, not thousands of
/// parked stacks.
#[allow(clippy::needless_pass_by_value)]
fn worker_loop<C: ServiceCore>(
    core: Arc<C>,
    shutdown: Arc<AtomicBool>,
    rx: std::sync::mpsc::Receiver<TcpStream>,
    live: Arc<AtomicU64>,
    listener_addr: SocketAddr,
) {
    // With no token configured every connection starts authenticated.
    let open = core.auth_token().is_none();
    let mut conns: Vec<Conn> = Vec::new();
    let mut chunk = vec![0u8; 16 * 1024];
    let mut spins = 0u32;
    let mut sleep = IDLE_SLEEP_FLOOR;
    loop {
        if shutdown.load(Ordering::Acquire) {
            live.fetch_sub(conns.len() as u64, Ordering::AcqRel);
            return;
        }
        while let Ok(stream) = rx.try_recv() {
            let _ = stream.set_nonblocking(true);
            let _ = stream.set_nodelay(true);
            conns.push(Conn::new(stream, open));
        }
        let mut progress = false;
        let mut index = 0;
        while index < conns.len() {
            match conns[index].step(core.as_ref(), &shutdown, listener_addr, &mut chunk) {
                ConnStep::Progress => {
                    progress = true;
                    index += 1;
                }
                ConnStep::Idle => index += 1,
                ConnStep::Close => {
                    conns.swap_remove(index);
                    live.fetch_sub(1, Ordering::AcqRel);
                    progress = true;
                }
            }
        }
        if progress {
            spins = 0;
            sleep = IDLE_SLEEP_FLOOR;
            continue;
        }
        if conns.is_empty() {
            // Nothing to poll: block on the hand-off channel (bounded so the
            // shutdown flag is still noticed).
            if let Ok(stream) = rx.recv_timeout(NET_TICK) {
                let _ = stream.set_nonblocking(true);
                let _ = stream.set_nodelay(true);
                conns.push(Conn::new(stream, open));
            }
            continue;
        }
        spins += 1;
        if spins <= IDLE_SPINS {
            thread::yield_now();
        } else {
            thread::sleep(sleep);
            sleep = (sleep * 2).min(NET_TICK);
        }
    }
}

/// A running server: the bound address plus shutdown plumbing. Dropping it
/// shuts the listener down and joins every service thread.
pub struct RunningServer {
    pub(crate) addr: SocketAddr,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) acceptor: Option<thread::JoinHandle<()>>,
    pub(crate) snapshotter: Option<thread::JoinHandle<()>>,
    pub(crate) replicator: Option<crate::cluster::ReplicatorHandle>,
}

impl RunningServer {
    /// The address the listener is bound to (use port 0 to let the OS pick).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replication barrier (servers started with [`ServeConfig::replicate`]
    /// only): block until every tuple accepted before the call has been
    /// cut, shipped, and acknowledged by the downstream aggregator, or
    /// `timeout` elapses. Returns the acknowledged generation — the
    /// deterministic hook the replication tests and the fan-in demo use
    /// instead of sleeping.
    pub fn replication_sync(&self, timeout: Duration) -> Result<u64, ServeError> {
        match &self.replicator {
            Some(handle) => handle.sync(timeout).map_err(ServeError::Invalid),
            None => Err(ServeError::Invalid(
                "this server was not started with ServeConfig::replicate".into(),
            )),
        }
    }

    /// Block until the server is asked to stop (the `shutdown` op or a
    /// signal-driven [`RunningServer::shutdown`] from another thread). The
    /// standalone `cora_serve_node` binary parks its main thread here.
    pub fn wait(&self) {
        while !self.shutdown.load(Ordering::Acquire) {
            thread::sleep(NET_TICK);
        }
    }

    /// Stop accepting connections, wind down every connection handler, and
    /// join the service threads. Idempotent with the `shutdown` op.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(mut replicator) = self.replicator.take() {
            replicator.stop_and_join();
        }
        if let Some(acceptor) = self.acceptor.take() {
            // Wake a blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = acceptor.join();
        }
        if let Some(snapshotter) = self.snapshotter.take() {
            let _ = snapshotter.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// What recovery found in a durable directory: the state to restore, the
/// journal batches to replay onto it, and where the fresh generation opens.
pub(crate) struct Recovered {
    pub(crate) bundle: Option<Bundle>,
    /// Generation of the snapshot `bundle` came from (the retention floor).
    pub(crate) restored_generation: Option<u64>,
    pub(crate) replay: Vec<JournalRecord>,
    /// The generation to open next — past every file on disk, so recovery
    /// never appends to (or overwrites) a file it just read.
    pub(crate) open_generation: u64,
}

/// Probe the durable directory: newest readable snapshot wins (torn or
/// corrupt ones are skipped, falling back to the previous generation), then
/// the valid prefix of every journal at or after it is queued for replay.
///
/// Refuses to start only when proceeding would mean *silent* loss of
/// previously-acked data: no snapshot is readable and the journal history
/// does not reach back to generation 0.
pub(crate) fn recover(
    storage: &Arc<dyn Storage>,
    dir: &std::path::Path,
) -> Result<Recovered, ServeError> {
    storage.create_dir_all(dir)?;
    let listing = list_generations(storage.as_ref(), dir)?;
    let mut restored: Option<(u64, Bundle)> = None;
    for &g in &listing.snapshots {
        let Ok(bytes) = storage.read(&snapshot_path(dir, g)) else {
            continue;
        };
        if let Ok(bundle) = decode_bundle(&bytes) {
            restored = Some((g, bundle));
            break;
        }
        // Torn or corrupt snapshot: fall back to the previous generation —
        // its journal chain replays the difference.
    }
    let base = match &restored {
        Some((g, _)) => *g,
        None => {
            let first = listing.journals.first().copied();
            let complete_history =
                first == Some(0) || (first.is_none() && listing.snapshots.is_empty());
            if !complete_history {
                return Err(ServeError::Invalid(format!(
                    "no readable snapshot in {dir:?} and the journal history begins at \
                     generation {first:?}, not 0 — recovering would silently drop acked \
                     batches; restore a snapshot file or point durability at a fresh \
                     directory"
                )));
            }
            0
        }
    };
    let mut replay = Vec::new();
    let relevant: Vec<u64> = listing.journals.iter().copied().filter(|&g| g >= base).collect();
    for (i, &g) in relevant.iter().enumerate() {
        let newest = i + 1 == relevant.len();
        let scanned = storage
            .read(&journal_path(dir, g))
            .map_err(|e| e.to_string())
            .and_then(|bytes| scan_journal(&bytes));
        match scanned {
            Ok(scan) if scan.generation == g => replay.extend(scan.records),
            // The newest journal may have died mid-header (a crash inside
            // rotation); it holds no acked batches, so skip it. Anywhere
            // else an unreadable journal is a hole in acked history.
            _ if newest => {}
            Ok(scan) => {
                return Err(ServeError::Invalid(format!(
                    "journal file for generation {g} carries header generation {} — \
                     refusing to replay a mislabeled journal",
                    scan.generation
                )));
            }
            Err(e) => {
                return Err(ServeError::Invalid(format!(
                    "journal for generation {g} is unreadable ({e}) but newer journals \
                     exist — refusing to recover with a hole in acked history"
                )));
            }
        }
    }
    let open_generation = listing
        .snapshots
        .first()
        .copied()
        .into_iter()
        .chain(listing.journals.last().copied())
        .max()
        .map_or(0, |g| g + 1);
    Ok(Recovered {
        restored_generation: restored.as_ref().map(|(g, _)| *g),
        bundle: restored.map(|(_, b)| b),
        replay,
        open_generation,
    })
}

/// Start a fresh server (empty sketches) bound to `bind`
/// (e.g. `"127.0.0.1:0"`). With [`ServeConfig::durability`] set, recovery
/// runs first against the real filesystem.
pub fn start(config: ServeConfig, bind: &str) -> Result<RunningServer, ServeError> {
    start_inner(config, bind, None, None)
}

/// [`start`], but with an injectable [`Storage`] backing the durability
/// layer — the seam the deterministic fault-injection suite uses. Requires
/// [`ServeConfig::durability`] to be set.
pub fn start_with_storage(
    config: ServeConfig,
    bind: &str,
    storage: Arc<dyn Storage>,
) -> Result<RunningServer, ServeError> {
    if config.durability.is_none() {
        return Err(ServeError::Invalid(
            "start_with_storage requires ServeConfig::durability".into(),
        ));
    }
    start_inner(config, bind, None, Some(storage))
}

/// Start a server from a snapshot bundle previously written by the
/// `snapshot` op. The restored structures answer queries identically to the
/// snapshotting server's at the moment of the snapshot. Incompatible with
/// [`ServeConfig::durability`], whose recovery decides for itself what to
/// restore.
pub fn start_restored(
    config: ServeConfig,
    bind: &str,
    bundle: &[u8],
) -> Result<RunningServer, ServeError> {
    if config.durability.is_some() {
        return Err(ServeError::Invalid(
            "start_restored cannot be combined with durability — recovery restores \
             from the durable directory itself"
                .into(),
        ));
    }
    let bundle = decode_bundle(bundle)?;
    start_inner(config, bind, Some(&bundle), None)
}

fn start_inner(
    config: ServeConfig,
    bind: &str,
    bundle: Option<&Bundle>,
    storage: Option<Arc<dyn Storage>>,
) -> Result<RunningServer, ServeError> {
    let max_connections = config.max_connections;
    let durability = config.durability.clone();
    let config_replicate = config.replicate.clone();
    let storage = durability
        .as_ref()
        .map(|_| storage.unwrap_or_else(crate::journal::disk_storage));
    let recovered = match (&durability, &storage) {
        (Some(d), Some(storage)) => Some(recover(storage, &d.dir)?),
        _ => None,
    };
    let effective_bundle = bundle.or(recovered.as_ref().and_then(|r| r.bundle.as_ref()));
    let core = Arc::new(ServerCore::build(config, effective_bundle)?);
    if let Some(recovered) = &recovered {
        // Replay the journal tail through the normal ingest path (the
        // durable slot is still None, so nothing is re-journaled). Errors
        // cannot occur for batches that were validated before being
        // journaled; a reply is still produced and ignored deliberately.
        for record in &recovered.replay {
            let _ = core.ingest_tuples(&record.tuples, &record.ts, record.seq);
        }
        let (d, storage) = (
            durability.as_ref().expect("durability implies recovery"),
            storage.as_ref().expect("durability implies storage"),
        );
        core.open_durable(storage, d, recovered.open_generation, recovered.restored_generation)?;
    }
    if let Some(replicate) = &config_replicate {
        if !crate::cluster::valid_stream_name(&replicate.stream) {
            return Err(ServeError::Invalid(format!(
                "replication stream name {:?} must be 1-64 bytes of [A-Za-z0-9_.-]",
                replicate.stream
            )));
        }
        core.enable_replication()?;
    }
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    // The background snapshotter: polls the rotation triggers while the
    // server runs. Spawned before the acceptor moves `core`.
    let snapshotter = match &durability {
        Some(d)
            if d.snapshot_every_tuples > 0
                || d.snapshot_interval_ms > 0 =>
        {
            let core = Arc::clone(&core);
            let shutdown = Arc::clone(&shutdown);
            let d = d.clone();
            thread::Builder::new()
                .name("cora-serve-snapshot".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        if core.snapshot_due(&d) {
                            // Failures are counted in snapshot_errors and
                            // retried on the next trigger; the previous
                            // generation stays in charge meanwhile.
                            let _ = core.durable_snapshot(true);
                        }
                        thread::sleep(Duration::from_millis(20));
                    }
                })
                .ok()
        }
        _ => None,
    };
    let replicator = config_replicate.map(|replicate| {
        crate::cluster::spawn_replicator(Arc::clone(&core), replicate, Arc::clone(&shutdown))
    });
    let acceptor = spawn_acceptor(core, listener, Arc::clone(&shutdown), max_connections)?;
    Ok(RunningServer {
        addr,
        shutdown,
        acceptor: Some(acceptor),
        snapshotter,
        replicator,
    })
}

/// Bind the shared transport stack — a fixed worker pool of non-blocking
/// connection pollers fed by one accept thread — over any [`ServiceCore`].
/// Used by [`start`] (ingest nodes) and by
/// [`crate::cluster::start_aggregator`].
pub(crate) fn spawn_acceptor<C: ServiceCore>(
    core: Arc<C>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    max_connections: usize,
) -> Result<thread::JoinHandle<()>, ServeError> {
    let addr = listener.local_addr()?;
    // A small fixed worker pool services every connection with non-blocking
    // reads; the acceptor only hands sockets over. Thousands of idle clients
    // therefore cost a few polling threads, not thousands of parked stacks.
    let workers = thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 4));
    let live = Arc::new(AtomicU64::new(0));
    let acceptor_shutdown = shutdown;
    thread::Builder::new()
        .name("cora-serve-accept".into())
        .spawn(move || {
            let mut txs = Vec::with_capacity(workers);
            let mut pool = Vec::with_capacity(workers);
            for i in 0..workers {
                let (tx, rx) = std::sync::mpsc::channel::<TcpStream>();
                let core = Arc::clone(&core);
                let shutdown = Arc::clone(&acceptor_shutdown);
                let live = Arc::clone(&live);
                if let Ok(handle) = thread::Builder::new()
                    .name(format!("cora-serve-worker-{i}"))
                    .spawn(move || worker_loop(core, shutdown, rx, live, addr))
                {
                    txs.push(tx);
                    pool.push(handle);
                }
            }
            let mut next = 0usize;
            loop {
                if acceptor_shutdown.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        if acceptor_shutdown.load(Ordering::Acquire) {
                            break; // the shutdown wake-up connection
                        }
                        if live.load(Ordering::Acquire) >= max_connections as u64 {
                            // Over the configured limit: answer with one
                            // error line and close, instead of silently
                            // queueing in the accept backlog. (Binary
                            // clients see a failed handshake — the reply is
                            // not a frame — and close too.)
                            let refusal = protocol::error_with_kind(
                                protocol::ErrorKind::Server,
                                &format!(
                                    "connection limit reached \
                                     (max_connections = {max_connections})"
                                ),
                            );
                            let _ = stream.write_all(refusal.as_bytes());
                            let _ = stream.write_all(b"\n");
                            continue;
                        }
                        if txs.is_empty() {
                            continue;
                        }
                        live.fetch_add(1, Ordering::AcqRel);
                        if txs[next % txs.len()].send(stream).is_err() {
                            live.fetch_sub(1, Ordering::AcqRel);
                        }
                        next = next.wrapping_add(1);
                    }
                    Err(_) => {
                        if acceptor_shutdown.load(Ordering::Acquire) {
                            break;
                        }
                    }
                }
            }
            drop(txs);
            for handle in pool {
                let _ = handle.join();
            }
        })
        .map_err(|e| ServeError::Invalid(format!("could not spawn the accept loop: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_round_trip_and_rejections() {
        let bundle = Bundle {
            f2: vec![1, 2, 3],
            f0: vec![4],
            rarity: vec![],
            hh: vec![5, 6],
            window_f2: vec![7],
            window_f0: vec![8, 9],
            seqs: vec![10],
        };
        let bytes = encode_bundle(&bundle);
        let decoded = decode_bundle(&bytes).unwrap();
        assert_eq!(decoded.f2, bundle.f2);
        assert_eq!(decoded.f0, bundle.f0);
        assert_eq!(decoded.rarity, bundle.rarity);
        assert_eq!(decoded.hh, bundle.hh);
        assert_eq!(decoded.window_f2, bundle.window_f2);
        assert_eq!(decoded.window_f0, bundle.window_f0);
        assert_eq!(decoded.seqs, bundle.seqs);

        assert!(decode_bundle(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_bundle(b"XXXX").is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0xFF;
        assert!(decode_bundle(&wrong_version).is_err());
    }

    #[test]
    fn core_rejects_bad_configs() {
        let no_shards = ServeConfig {
            shards: 0,
            ..Default::default()
        };
        assert!(ServerCore::build(no_shards, None).is_err());
        let bad_phi = ServeConfig {
            phi: 0.0,
            ..Default::default()
        };
        assert!(ServerCore::build(bad_phi, None).is_err());
        let bad_panes = ServeConfig {
            pane_ticks: 0,
            ..Default::default()
        };
        assert!(ServerCore::build(bad_panes, None).is_err());
    }

    #[test]
    fn core_handles_requests_without_a_socket() {
        let config = ServeConfig {
            shards: 2,
            merge_every: 1,
            y_max: 1023,
            pane_ticks: 4,
            ..Default::default()
        };
        let core = ServerCore::build(config, None).unwrap();
        let (reply, stop) = core.handle(Request::Ping);
        assert!(reply.render_json().contains("true") && !stop);
        let (reply, _) = core.handle(Request::Ingest {
            xs: vec![1, 2, 1],
            ys: vec![10, 20, 900],
            ts: None,
            seq: None,
        });
        let resp = reply.render_json();
        assert!(resp.contains("\"accepted\":3"), "{resp}");
        // Out-of-range y rejected atomically.
        let (reply, _) = core.handle(Request::Ingest {
            xs: vec![9],
            ys: vec![5000],
            ts: None,
            seq: None,
        });
        assert!(matches!(reply, Reply::Error(_)), "{reply:?}");
        // Sequence-tagged batches: at-or-below the high-water mark is a
        // duplicate; above it applies.
        let (reply, _) = core.handle(Request::Ingest {
            xs: vec![5],
            ys: vec![50],
            ts: None,
            seq: Some((7, 1)),
        });
        assert!(reply.render_json().contains("\"accepted\":1"));
        let (reply, _) = core.handle(Request::Ingest {
            xs: vec![5],
            ys: vec![50],
            ts: None,
            seq: Some((7, 1)),
        });
        let resp = reply.render_json();
        assert!(
            resp.contains("\"accepted\":0") && resp.contains("\"duplicate\":1"),
            "{resp}"
        );
        core.handle(Request::Flush);
        let (reply, _) = core.handle(Request::QueryF2 { c: 1023 });
        let resp = reply.render_json();
        let value = protocol::Response::parse(&resp).unwrap().f64_field("value").unwrap();
        assert!(value > 0.0);
        let (reply, _) = core.handle(Request::QueryF0 { c: 1023 });
        assert!(protocol::Response::parse(&reply.render_json()).unwrap().is_ok());
        let (reply, stop) = core.handle(Request::Shutdown);
        assert!(reply.render_json().contains("true") && stop);
    }

    #[test]
    fn core_answers_window_queries_with_resolved_spans() {
        let config = ServeConfig {
            shards: 1,
            merge_every: 1,
            y_max: 1023,
            pane_ticks: 8,
            ..Default::default()
        };
        let core = ServerCore::build(config, None).unwrap();
        let answer = |request: Request| {
            let (reply, _) = core.handle(request);
            protocol::Response::parse(&reply.render_json()).unwrap()
        };
        // Empty ring answers zero with an empty resolved span.
        let r = answer(Request::WindowF2 { window: 100, c: 1023 });
        assert!(r.is_ok());
        assert_eq!(r.u64_field("resolved_hi").unwrap(), 0);
        // Default clock stamps arrival ticks 0, 1, 2, ...
        let n = 64u64;
        let r = answer(Request::Ingest {
            xs: (0..n).collect(),
            ys: (0..n).map(|i| i % 1024).collect(),
            ts: None,
            seq: None,
        });
        assert_eq!(r.u64_field("accepted").unwrap(), n);
        let r = answer(Request::WindowF2 { window: 32, c: 1023 });
        assert!(r.is_ok());
        assert!(r.f64_field("value").unwrap() > 0.0);
        let lo = r.u64_field("resolved_lo").unwrap();
        let hi = r.u64_field("resolved_hi").unwrap();
        assert!(lo >= 32 && hi == 64, "resolved [{lo}, {hi})");
        // Explicit timestamps drive the window clock.
        let r = answer(Request::Ingest {
            xs: vec![7, 7],
            ys: vec![1, 2],
            ts: Some(vec![1000, 990]),
            seq: None,
        });
        assert_eq!(r.u64_field("accepted").unwrap(), 2);
        let r = answer(Request::WindowF0 { window: 16, c: 1023 });
        assert!(r.is_ok());
        assert!(r.u64_field("resolved_hi").unwrap() > 1000);
    }
}
