//! The always-on query server: a `std::net::TcpListener` line-protocol
//! front over one sharded correlated-`F_2` ingest (queried through the
//! [background merger](crate::merger)) plus synchronously-updated
//! `F_0`/rarity/heavy-hitter sketches, with snapshot persistence.
//!
//! ## Architecture
//!
//! ```text
//!            TCP clients (newline-delimited JSON, one thread per conn)
//!                 │ ingest / flush            │ f2 queries
//!                 ▼                           ▼
//!   Mutex<ShardedIngest<F2>>            BackgroundMerger ── epoch-published
//!      │ SPSC rings → N workers    ◄──── ShardReader          composite
//!      ▼                                (rebuilds off the read path)
//!   Mutex<{CorrelatedF0, CorrelatedRarity, CorrelatedHeavyHitters}>
//!      ▲ f0 / rarity / heavy_hitters queries + synchronous inserts
//! ```
//!
//! `f2` answers come from the merger's published composite and therefore lag
//! ingest by at most `merge_every − 1` applied batches plus one in-flight
//! rebuild — and never block on that rebuild. The auxiliary sketches are
//! updated inline under their own lock (they are `O(1)`-ish per insert) and
//! answer with read-your-writes semantics. `flush` is the barrier that makes
//! `f2` exact too.
//!
//! ## Windowed structures
//!
//! Alongside the whole-stream sketches the server hosts two pane rings
//! (`cora_stream::windowed`): a windowed correlated `F_2` and a windowed
//! correlated `F_0`, updated under their own lock on every ingest. Tuples
//! carry either client-supplied timestamps (the optional `ts` ingest array)
//! or consecutive server-side arrival ticks; `window_f2` / `window_f0`
//! answer sliding-window thresholds over them and report the pane-aligned
//! resolved span alongside the value.
//!
//! ## Snapshot bundle
//!
//! The `snapshot` op writes one file: a `CSRV` container holding the six
//! `cora_core::snapshot` frames (framework composite, F0, rarity, heavy
//! hitters, and the two windowed pane rings), each individually checksummed.
//! [`start_restored`] boots a server from such a file; restored structures
//! answer queries bit-identically (pinned by the integration tests and the
//! CI serve-smoke step).

use crate::merger::BackgroundMerger;
use crate::protocol::{self, Request};
use cora_core::{
    CoreError, CorrelatedConfig, CorrelatedF0, CorrelatedHeavyHitters, CorrelatedRarity,
    F2Aggregate,
};
use cora_sketch::codec::{ByteReader, ByteWriter};
use cora_stream::json;
use cora_stream::windowed::{
    windowed_f0, windowed_f2, PaneConfig, PaneRing, WindowPane, WindowedF0, WindowedF2,
};
use cora_stream::ShardedIngest;
use std::fmt;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

/// Errors starting or restoring a server.
#[derive(Debug)]
pub enum ServeError {
    /// A sketch could not be built or restored.
    Core(CoreError),
    /// Socket or file I/O failed.
    Io(std::io::Error),
    /// The configuration or snapshot bundle is unusable.
    Invalid(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "sketch error: {e}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Invalid(detail) => write!(f, "invalid serve setup: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Construction parameters for a serving instance. Every sketch the server
/// hosts is derived from these (and only these), so a config plus a snapshot
/// bundle fully determines a server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Target relative error for every hosted sketch.
    pub epsilon: f64,
    /// Target failure probability.
    pub delta: f64,
    /// Largest y value accepted by `ingest`.
    pub y_max: u64,
    /// Upper bound on the stream length (sizes the `F_2` level count).
    pub max_stream_len: u64,
    /// Master seed shared by every hosted sketch.
    pub seed: u64,
    /// Ingest worker shards for the `F_2` structure.
    pub shards: usize,
    /// Background-merger trigger: rebuild the published composite once this
    /// many new batches have been applied (≥ 1; 1 = republish eagerly).
    pub merge_every: u64,
    /// Smallest heavy-hitter share threshold the server must support.
    pub phi: f64,
    /// `log2` of the identifier domain (sizes the F0/rarity samplers).
    pub x_domain_log2: u32,
    /// Base pane width (ticks) of the windowed structures.
    pub pane_ticks: u64,
    /// Per-class pane budget of the windowed structures (≥ 2).
    pub pane_k: usize,
    /// Retention horizon of the windowed structures in ticks
    /// (`None` = landmark mode, keep coarsening history forever).
    pub pane_retention: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.2,
            delta: 0.1,
            y_max: (1 << 20) - 1,
            max_stream_len: 10_000_000,
            seed: 0xC04A_5EED,
            shards: 4,
            merge_every: 4,
            phi: 0.05,
            x_domain_log2: 24,
            pane_ticks: 1_024,
            pane_k: 4,
            pane_retention: None,
        }
    }
}

impl ServeConfig {
    /// The derived correlated-`F_2` aggregate.
    fn f2_aggregate(&self) -> F2Aggregate {
        F2Aggregate::new(self.epsilon, self.delta, self.seed)
    }

    /// The derived framework configuration for the `F_2` structure.
    fn f2_config(&self) -> Result<CorrelatedConfig, CoreError> {
        use cora_core::CorrelatedAggregate;
        let agg = self.f2_aggregate();
        Ok(CorrelatedConfig::new(
            self.epsilon,
            self.delta,
            self.y_max,
            agg.f_max_log2(self.max_stream_len),
        )?
        .with_seed(self.seed))
    }

    /// The derived pane geometry for the windowed structures.
    fn pane_config(&self) -> PaneConfig {
        PaneConfig {
            pane_ticks: self.pane_ticks,
            k: self.pane_k,
            retention: self.pane_retention,
        }
    }
}

/// The windowed structures plus the server's tick clock: tuples ingested
/// without explicit timestamps are stamped with consecutive arrival ticks;
/// explicit timestamps advance the clock past themselves.
struct WindowState {
    f2: WindowedF2,
    f0: WindowedF0,
    clock: u64,
}

/// The auxiliary sketches updated synchronously on every ingest.
struct AuxSketches {
    f0: CorrelatedF0,
    rarity: CorrelatedRarity,
    hh: CorrelatedHeavyHitters,
}

/// Shared server state.
struct ServerCore {
    config: ServeConfig,
    sharded: Mutex<ShardedIngest<F2Aggregate>>,
    aux: Mutex<AuxSketches>,
    windows: Mutex<WindowState>,
    merger: BackgroundMerger<F2Aggregate>,
    requests: AtomicU64,
    accepted: AtomicU64,
    snapshots: AtomicU64,
}

/// Magic bytes of a snapshot bundle file.
const BUNDLE_MAGIC: [u8; 4] = *b"CSRV";
/// Bundle container version. Version 2 added the windowed sections (5, 6);
/// version-1 bundles predate the windowed structures and are refused rather
/// than restored into a server that would silently answer window queries
/// from an empty ring.
const BUNDLE_VERSION: u16 = 2;
/// Section tags inside a bundle.
const SECTION_F2: u8 = 1;
const SECTION_F0: u8 = 2;
const SECTION_RARITY: u8 = 3;
const SECTION_HH: u8 = 4;
const SECTION_WINDOW_F2: u8 = 5;
const SECTION_WINDOW_F0: u8 = 6;

/// Decoded snapshot bundle: one `cora_core::snapshot` frame per structure.
struct Bundle {
    f2: Vec<u8>,
    f0: Vec<u8>,
    rarity: Vec<u8>,
    hh: Vec<u8>,
    window_f2: Vec<u8>,
    window_f0: Vec<u8>,
}

fn encode_bundle(bundle: &Bundle) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(&BUNDLE_MAGIC);
    w.put_u16(BUNDLE_VERSION);
    w.put_u8(6);
    for (tag, frame) in [
        (SECTION_F2, &bundle.f2),
        (SECTION_F0, &bundle.f0),
        (SECTION_RARITY, &bundle.rarity),
        (SECTION_HH, &bundle.hh),
        (SECTION_WINDOW_F2, &bundle.window_f2),
        (SECTION_WINDOW_F0, &bundle.window_f0),
    ] {
        w.put_u8(tag);
        w.put_len(frame.len());
        w.put_bytes(frame);
    }
    w.into_bytes()
}

fn decode_bundle(bytes: &[u8]) -> Result<Bundle, ServeError> {
    let invalid = |detail: String| ServeError::Invalid(detail);
    let mut r = ByteReader::new(bytes);
    let magic = r
        .take(4)
        .map_err(|e| invalid(format!("bundle header: {e}")))?;
    if magic != BUNDLE_MAGIC {
        return Err(invalid("not a cora-serve snapshot bundle (bad magic)".into()));
    }
    let version = r.get_u16().map_err(|e| invalid(e.to_string()))?;
    if version != BUNDLE_VERSION {
        return Err(invalid(format!(
            "unsupported bundle version {version} (this build reads {BUNDLE_VERSION})"
        )));
    }
    let sections = r.get_u8().map_err(|e| invalid(e.to_string()))?;
    let mut f2 = None;
    let mut f0 = None;
    let mut rarity = None;
    let mut hh = None;
    let mut window_f2 = None;
    let mut window_f0 = None;
    for _ in 0..sections {
        let tag = r.get_u8().map_err(|e| invalid(e.to_string()))?;
        let len = r.get_len().map_err(|e| invalid(e.to_string()))?;
        let frame = r
            .take(len)
            .map_err(|e| invalid(format!("bundle section {tag}: {e}")))?
            .to_vec();
        let slot = match tag {
            SECTION_F2 => &mut f2,
            SECTION_F0 => &mut f0,
            SECTION_RARITY => &mut rarity,
            SECTION_HH => &mut hh,
            SECTION_WINDOW_F2 => &mut window_f2,
            SECTION_WINDOW_F0 => &mut window_f0,
            other => return Err(invalid(format!("unknown bundle section tag {other}"))),
        };
        if slot.replace(frame).is_some() {
            return Err(invalid(format!("bundle holds section tag {tag} twice")));
        }
    }
    if !r.is_empty() {
        return Err(invalid(format!(
            "{} trailing bytes after the declared bundle sections",
            r.remaining()
        )));
    }
    match (f2, f0, rarity, hh, window_f2, window_f0) {
        (Some(f2), Some(f0), Some(rarity), Some(hh), Some(window_f2), Some(window_f0)) => {
            Ok(Bundle { f2, f0, rarity, hh, window_f2, window_f0 })
        }
        _ => Err(invalid("bundle is missing one or more structure sections".into())),
    }
}

/// Answer one window query: the estimate plus the pane-aligned resolved span
/// `[resolved_lo, resolved_hi)` it actually covers (all zero while the ring
/// is empty or nothing falls inside the window).
fn window_answer<P: WindowPane>(
    ring: &PaneRing<P>,
    window: u64,
    c: u64,
) -> Result<Vec<(&'static str, String)>, String> {
    let empty = vec![
        ("value", json::float(0.0)),
        ("resolved_lo", "0".to_string()),
        ("resolved_hi", "0".to_string()),
    ];
    let Some(now) = ring.t_latest() else {
        return Ok(empty);
    };
    let Some((lo, hi)) = ring.resolved_window(now, window).map_err(|e| e.to_string())? else {
        return Ok(empty);
    };
    let value = ring.query_sliding(window, c).map_err(|e| e.to_string())?;
    Ok(vec![
        ("value", json::float(value)),
        ("resolved_lo", lo.to_string()),
        ("resolved_hi", hi.to_string()),
    ])
}

impl ServerCore {
    /// Build a fresh core (empty sketches) or one restored from a bundle.
    fn build(config: ServeConfig, bundle: Option<&Bundle>) -> Result<Self, ServeError> {
        if config.shards == 0 {
            return Err(ServeError::Invalid("shards must be at least 1".into()));
        }
        if !(config.phi > 0.0 && config.phi < 1.0) {
            return Err(ServeError::Invalid(format!(
                "phi must be in (0,1), got {}",
                config.phi
            )));
        }
        let agg = config.f2_aggregate();
        let f2_config = config.f2_config()?;
        let fresh_windows = || -> Result<WindowState, ServeError> {
            Ok(WindowState {
                f2: windowed_f2(
                    config.epsilon,
                    config.delta,
                    config.y_max,
                    config.max_stream_len,
                    config.seed,
                    config.pane_config(),
                )?,
                f0: windowed_f0(
                    config.epsilon,
                    config.delta,
                    config.x_domain_log2,
                    config.y_max,
                    config.seed,
                    config.pane_config(),
                )?,
                clock: 0,
            })
        };
        let (sharded, aux, windows) = match bundle {
            None => {
                let sharded = ShardedIngest::new(agg, f2_config, config.shards)?;
                let aux = AuxSketches {
                    f0: CorrelatedF0::with_seed(
                        config.epsilon,
                        config.delta,
                        config.x_domain_log2,
                        config.y_max,
                        config.seed,
                    )?,
                    rarity: CorrelatedRarity::with_seed(
                        config.epsilon,
                        config.x_domain_log2,
                        config.y_max,
                        config.seed,
                    )?,
                    hh: CorrelatedHeavyHitters::with_seed(
                        config.epsilon,
                        config.delta,
                        config.phi,
                        config.y_max,
                        config.max_stream_len,
                        config.seed,
                    )?,
                };
                (sharded, aux, fresh_windows()?)
            }
            Some(bundle) => {
                let mismatch = |what: &str| {
                    Err(ServeError::Invalid(format!(
                        "snapshot bundle was taken under a different serve configuration \
                         ({what} differs) — a config plus a bundle must fully determine \
                         a server"
                    )))
                };
                let sharded = ShardedIngest::restore_from(agg, config.shards, &bundle.f2)?;
                if *sharded.config() != f2_config {
                    return mismatch("F2 accuracy, domain, stream bound, or seed");
                }
                let aux = AuxSketches {
                    f0: CorrelatedF0::restore_from(&bundle.f0)?,
                    rarity: CorrelatedRarity::restore_from(&bundle.rarity)?,
                    hh: CorrelatedHeavyHitters::restore_from(&bundle.hh)?,
                };
                // Every restored structure must match what this config would
                // build fresh — including the fields the F2 check cannot see
                // (x_domain_log2 sizes the samplers, phi the candidate sets).
                if aux.f0.epsilon() != config.epsilon
                    || aux.f0.delta() != config.delta
                    || aux.f0.y_max() != config.y_max
                    || aux.f0.seed() != config.seed
                    || aux.f0.x_domain_log2() != config.x_domain_log2
                {
                    return mismatch("F0 parameters");
                }
                if aux.rarity.epsilon() != config.epsilon
                    || aux.rarity.y_max() != config.y_max
                    || aux.rarity.seed() != config.seed
                    || aux.rarity.x_domain_log2() != config.x_domain_log2
                {
                    return mismatch("rarity parameters");
                }
                if *aux.hh.aggregate()
                    != cora_core::heavy_hitters::F2HeavyAggregate::new(
                        config.epsilon,
                        config.phi,
                        config.seed,
                    )
                    || *aux.hh.config() != f2_config
                {
                    return mismatch("heavy-hitter parameters (phi, accuracy, or seed)");
                }
                let wf2 = WindowedF2::restore_from(config.f2_aggregate(), &bundle.window_f2)?;
                let wf0 = WindowedF0::restore_from(&bundle.window_f0)?;
                let fresh = fresh_windows()?;
                if wf2.template().config() != fresh.f2.template().config()
                    || wf2.pane_config() != fresh.f2.pane_config()
                {
                    return mismatch("windowed F2 parameters or pane geometry");
                }
                let f0t = wf0.template();
                let fresh_f0t = fresh.f0.template();
                if f0t.epsilon() != fresh_f0t.epsilon()
                    || f0t.delta() != fresh_f0t.delta()
                    || f0t.y_max() != fresh_f0t.y_max()
                    || f0t.seed() != fresh_f0t.seed()
                    || f0t.x_domain_log2() != fresh_f0t.x_domain_log2()
                    || wf0.pane_config() != fresh.f0.pane_config()
                {
                    return mismatch("windowed F0 parameters or pane geometry");
                }
                // The arrival clock resumes one past the newest restored tick.
                let clock = wf2.t_latest().map_or(0, |t| t.saturating_add(1));
                let windows = WindowState { f2: wf2, f0: wf0, clock };
                (sharded, aux, windows)
            }
        };
        let merger = BackgroundMerger::spawn(sharded.reader(), config.merge_every.max(1))?;
        Ok(Self {
            config,
            sharded: Mutex::new(sharded),
            aux: Mutex::new(aux),
            windows: Mutex::new(windows),
            merger,
            requests: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
        })
    }

    fn snapshot_bundle(&self) -> Result<Vec<u8>, ServeError> {
        // Hold all three locks (sharded before aux before windows, like the
        // ingest path) across the whole bundle, so every section describes
        // the same stream prefix — a bundle must fully determine a server.
        let mut sharded = self.sharded.lock().unwrap_or_else(PoisonError::into_inner);
        let aux = self.aux.lock().unwrap_or_else(PoisonError::into_inner);
        let windows = self.windows.lock().unwrap_or_else(PoisonError::into_inner);
        let bundle = Bundle {
            f2: sharded.snapshot()?,
            f0: aux.f0.snapshot(),
            rarity: aux.rarity.snapshot(),
            hh: aux.hh.snapshot(),
            window_f2: windows.f2.snapshot(),
            window_f0: windows.f0.snapshot(),
        };
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(encode_bundle(&bundle))
    }

    /// Handle one request; the bool asks the listener to shut down.
    fn handle(&self, request: Request) -> (String, bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let fail = |e: String| (protocol::error(&e), false);
        match request {
            Request::Ping => (protocol::ok(), false),
            Request::Config => {
                let c = &self.config;
                (
                    protocol::ok_with(&[
                        ("epsilon", json::float(c.epsilon)),
                        ("delta", json::float(c.delta)),
                        ("y_max", c.y_max.to_string()),
                        ("max_stream_len", c.max_stream_len.to_string()),
                        ("seed", c.seed.to_string()),
                        ("shards", c.shards.to_string()),
                        ("merge_every", c.merge_every.to_string()),
                        ("phi", json::float(c.phi)),
                        ("x_domain_log2", c.x_domain_log2.to_string()),
                        ("pane_ticks", c.pane_ticks.to_string()),
                        ("pane_k", c.pane_k.to_string()),
                        (
                            "pane_retention",
                            c.pane_retention.map_or("null".to_string(), |r| r.to_string()),
                        ),
                    ]),
                    false,
                )
            }
            Request::Ingest { xs, ys, ts } => {
                // Validate atomically against the *configured* y_max so all
                // hosted structures accept or reject a batch together.
                if let Some(&y) = ys.iter().find(|&&y| y > self.config.y_max) {
                    return fail(format!("y {y} exceeds configured y_max {}", self.config.y_max));
                }
                let tuples: Vec<(u64, u64)> = xs.into_iter().zip(ys).collect();
                {
                    // All three locks are held across the whole batch (sharded
                    // before aux before windows, the order `snapshot_bundle`
                    // uses too), so a concurrent snapshot can never capture
                    // the structures at different stream prefixes.
                    let mut sharded = self.sharded.lock().unwrap_or_else(PoisonError::into_inner);
                    let mut aux = self.aux.lock().unwrap_or_else(PoisonError::into_inner);
                    let mut windows = self.windows.lock().unwrap_or_else(PoisonError::into_inner);
                    if let Err(e) = sharded.ingest(&tuples) {
                        return fail(e.to_string());
                    }
                    for &(x, y) in &tuples {
                        if let Err(e) = aux
                            .f0
                            .insert(x, y)
                            .and_then(|()| aux.rarity.insert(x, y))
                            .and_then(|()| aux.hh.insert(x, y))
                        {
                            return fail(format!("auxiliary sketch rejected a tuple: {e}"));
                        }
                    }
                    // Windowed structures: explicit per-tuple timestamps when
                    // the client sent them, the arrival counter otherwise.
                    let windows = &mut *windows;
                    for (i, &(x, y)) in tuples.iter().enumerate() {
                        let t = match &ts {
                            Some(ts) => {
                                let t = ts[i];
                                windows.clock = windows.clock.max(t.saturating_add(1));
                                t
                            }
                            None => {
                                let t = windows.clock;
                                windows.clock = windows.clock.saturating_add(1);
                                t
                            }
                        };
                        if let Err(e) = windows
                            .f2
                            .observe(x, y, t)
                            .and_then(|()| windows.f0.observe(x, y, t))
                        {
                            return fail(format!("windowed structure rejected a tuple: {e}"));
                        }
                    }
                }
                let n = tuples.len() as u64;
                self.accepted.fetch_add(n, Ordering::Relaxed);
                (protocol::ok_with(&[("accepted", n.to_string())]), false)
            }
            Request::Flush => {
                self.sharded
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .flush();
                self.merger.refresh();
                (protocol::ok(), false)
            }
            Request::QueryF2 { c } => match self.merger.current().sketch().query(c) {
                Ok(value) => (protocol::ok_with(&[("value", json::float(value))]), false),
                Err(e) => fail(e.to_string()),
            },
            Request::QueryF0 { c } => {
                let aux = self.aux.lock().unwrap_or_else(PoisonError::into_inner);
                match aux.f0.query(c.min(self.config.y_max)) {
                    Ok(value) => (protocol::ok_with(&[("value", json::float(value))]), false),
                    Err(e) => fail(e.to_string()),
                }
            }
            Request::QueryRarity { c } => {
                let aux = self.aux.lock().unwrap_or_else(PoisonError::into_inner);
                match aux.rarity.query(c.min(self.config.y_max)) {
                    Ok(value) => (protocol::ok_with(&[("value", json::float(value))]), false),
                    Err(e) => fail(e.to_string()),
                }
            }
            Request::QueryHeavyHitters { c, phi } => {
                let aux = self.aux.lock().unwrap_or_else(PoisonError::into_inner);
                match aux.hh.query_heavy_hitters(c, phi) {
                    Ok(hitters) => {
                        let items: Vec<u64> = hitters.iter().map(|h| h.item).collect();
                        let freqs: Vec<f64> = hitters.iter().map(|h| h.frequency).collect();
                        let shares: Vec<f64> = hitters.iter().map(|h| h.share).collect();
                        (
                            protocol::ok_with(&[
                                ("items", protocol::u64_array(&items)),
                                ("frequencies", json::float_array(&freqs)),
                                ("shares", json::float_array(&shares)),
                            ]),
                            false,
                        )
                    }
                    Err(e) => fail(e.to_string()),
                }
            }
            Request::WindowF2 { window, c } => {
                let windows = self.windows.lock().unwrap_or_else(PoisonError::into_inner);
                match window_answer(&windows.f2, window, c.min(self.config.y_max)) {
                    Ok(fields) => (protocol::ok_with(&fields), false),
                    Err(e) => fail(e),
                }
            }
            Request::WindowF0 { window, c } => {
                let windows = self.windows.lock().unwrap_or_else(PoisonError::into_inner);
                match window_answer(&windows.f0, window, c.min(self.config.y_max)) {
                    Ok(fields) => (protocol::ok_with(&fields), false),
                    Err(e) => fail(e),
                }
            }
            Request::Stats => {
                let composite = self.merger.current();
                let stats = composite.sketch().stats();
                let accepted = self
                    .sharded
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .items_accepted();
                let (window_panes, window_late_dropped, window_clock) = {
                    let windows = self.windows.lock().unwrap_or_else(PoisonError::into_inner);
                    (windows.f2.pane_count(), windows.f2.late_dropped(), windows.clock)
                };
                (
                    protocol::ok_with(&[
                        ("requests", self.requests.load(Ordering::Relaxed).to_string()),
                        ("items_accepted", accepted.to_string()),
                        ("composite_items", stats.items_processed.to_string()),
                        ("composite_epoch", composite.epoch().to_string()),
                        (
                            "staleness_batches",
                            self.merger.staleness_batches().to_string(),
                        ),
                        ("singleton_buckets", stats.singleton_buckets.to_string()),
                        ("dyadic_buckets", stats.dyadic_buckets.to_string()),
                        ("stored_tuples", stats.stored_tuples.to_string()),
                        ("space_bytes", stats.space_bytes.to_string()),
                        (
                            "snapshots_taken",
                            self.snapshots.load(Ordering::Relaxed).to_string(),
                        ),
                        ("window_panes", window_panes.to_string()),
                        ("window_late_dropped", window_late_dropped.to_string()),
                        ("window_clock", window_clock.to_string()),
                    ]),
                    false,
                )
            }
            Request::Snapshot { path } => match self.snapshot_bundle() {
                Ok(bytes) => match std::fs::write(&path, &bytes) {
                    Ok(()) => (
                        protocol::ok_with(&[("bytes", bytes.len().to_string())]),
                        false,
                    ),
                    Err(e) => fail(format!("could not write snapshot to {path:?}: {e}")),
                },
                Err(e) => fail(e.to_string()),
            },
            Request::Shutdown => (protocol::ok(), true),
        }
    }
}

/// Poll interval for connection read timeouts and the accept loop's
/// shutdown checks.
const NET_TICK: Duration = Duration::from_millis(50);

/// Serve one connection: read request lines, answer each on its own line.
/// A read timeout fires every [`NET_TICK`] so the handler notices shutdown
/// even while a client sits idle.
fn handle_connection(core: &ServerCore, stream: TcpStream, shutdown: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(NET_TICK));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            // A timeout can fire mid-line with a partial fragment already
            // appended to `line`; keep it — the next read_line call appends
            // the rest. Clearing here would corrupt slow/fragmented
            // requests.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            line.clear();
            continue;
        }
        let (response, stop) = match Request::parse(trimmed) {
            Ok(request) => core.handle(request),
            Err(e) => (protocol::error(&format!("bad request: {e}")), false),
        };
        line.clear();
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            return;
        }
        if stop {
            shutdown.store(true, Ordering::Release);
            // The acceptor may be blocked in accept(); wake it with a
            // throwaway connection (this socket's local address *is* the
            // listener's) so the shutdown op alone stops the listener.
            if let Ok(addr) = writer.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            return;
        }
    }
}

/// A running server: the bound address plus shutdown plumbing. Dropping it
/// shuts the listener down and joins every service thread.
pub struct RunningServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl RunningServer {
    /// The address the listener is bound to (use port 0 to let the OS pick).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections, wind down every connection handler, and
    /// join the service threads. Idempotent with the `shutdown` op.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            // Wake a blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = acceptor.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Start a fresh server (empty sketches) bound to `bind`
/// (e.g. `"127.0.0.1:0"`).
pub fn start(config: ServeConfig, bind: &str) -> Result<RunningServer, ServeError> {
    start_inner(config, bind, None)
}

/// Start a server from a snapshot bundle previously written by the
/// `snapshot` op. The restored structures answer queries identically to the
/// snapshotting server's at the moment of the snapshot.
pub fn start_restored(
    config: ServeConfig,
    bind: &str,
    bundle: &[u8],
) -> Result<RunningServer, ServeError> {
    let bundle = decode_bundle(bundle)?;
    start_inner(config, bind, Some(&bundle))
}

fn start_inner(
    config: ServeConfig,
    bind: &str,
    bundle: Option<&Bundle>,
) -> Result<RunningServer, ServeError> {
    let core = Arc::new(ServerCore::build(config, bundle)?);
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let acceptor_shutdown = Arc::clone(&shutdown);
    let acceptor = thread::Builder::new()
        .name("cora-serve-accept".into())
        .spawn(move || {
            let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
            loop {
                if acceptor_shutdown.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        if acceptor_shutdown.load(Ordering::Acquire) {
                            break; // the shutdown wake-up connection
                        }
                        let core = Arc::clone(&core);
                        let shutdown = Arc::clone(&acceptor_shutdown);
                        if let Ok(handle) = thread::Builder::new()
                            .name("cora-serve-conn".into())
                            .spawn(move || handle_connection(&core, stream, &shutdown))
                        {
                            handlers.push(handle);
                        }
                        // Reap finished handlers so long-lived servers don't
                        // accumulate join handles.
                        handlers.retain(|h| !h.is_finished());
                    }
                    Err(_) => {
                        if acceptor_shutdown.load(Ordering::Acquire) {
                            break;
                        }
                    }
                }
            }
            for handle in handlers {
                let _ = handle.join();
            }
        })
        .map_err(|e| ServeError::Invalid(format!("could not spawn the accept loop: {e}")))?;
    Ok(RunningServer {
        addr,
        shutdown,
        acceptor: Some(acceptor),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_round_trip_and_rejections() {
        let bundle = Bundle {
            f2: vec![1, 2, 3],
            f0: vec![4],
            rarity: vec![],
            hh: vec![5, 6],
            window_f2: vec![7],
            window_f0: vec![8, 9],
        };
        let bytes = encode_bundle(&bundle);
        let decoded = decode_bundle(&bytes).unwrap();
        assert_eq!(decoded.f2, bundle.f2);
        assert_eq!(decoded.f0, bundle.f0);
        assert_eq!(decoded.rarity, bundle.rarity);
        assert_eq!(decoded.hh, bundle.hh);
        assert_eq!(decoded.window_f2, bundle.window_f2);
        assert_eq!(decoded.window_f0, bundle.window_f0);

        assert!(decode_bundle(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_bundle(b"XXXX").is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0xFF;
        assert!(decode_bundle(&wrong_version).is_err());
    }

    #[test]
    fn core_rejects_bad_configs() {
        let no_shards = ServeConfig {
            shards: 0,
            ..Default::default()
        };
        assert!(ServerCore::build(no_shards, None).is_err());
        let bad_phi = ServeConfig {
            phi: 0.0,
            ..Default::default()
        };
        assert!(ServerCore::build(bad_phi, None).is_err());
        let bad_panes = ServeConfig {
            pane_ticks: 0,
            ..Default::default()
        };
        assert!(ServerCore::build(bad_panes, None).is_err());
    }

    #[test]
    fn core_handles_requests_without_a_socket() {
        let config = ServeConfig {
            shards: 2,
            merge_every: 1,
            y_max: 1023,
            pane_ticks: 4,
            ..Default::default()
        };
        let core = ServerCore::build(config, None).unwrap();
        let (resp, stop) = core.handle(Request::Ping);
        assert!(resp.contains("true") && !stop);
        let (resp, _) = core.handle(Request::Ingest {
            xs: vec![1, 2, 1],
            ys: vec![10, 20, 900],
            ts: None,
        });
        assert!(resp.contains("\"accepted\":3"), "{resp}");
        // Out-of-range y rejected atomically.
        let (resp, _) = core.handle(Request::Ingest {
            xs: vec![9],
            ys: vec![5000],
            ts: None,
        });
        assert!(resp.contains("false"), "{resp}");
        core.handle(Request::Flush);
        let (resp, _) = core.handle(Request::QueryF2 { c: 1023 });
        let value = protocol::Response::parse(&resp).unwrap().f64_field("value").unwrap();
        assert!(value > 0.0);
        let (resp, _) = core.handle(Request::QueryF0 { c: 1023 });
        assert!(protocol::Response::parse(&resp).unwrap().is_ok());
        let (resp, stop) = core.handle(Request::Shutdown);
        assert!(resp.contains("true") && stop);
    }

    #[test]
    fn core_answers_window_queries_with_resolved_spans() {
        let config = ServeConfig {
            shards: 1,
            merge_every: 1,
            y_max: 1023,
            pane_ticks: 8,
            ..Default::default()
        };
        let core = ServerCore::build(config, None).unwrap();
        // Empty ring answers zero with an empty resolved span.
        let (resp, _) = core.handle(Request::WindowF2 { window: 100, c: 1023 });
        let r = protocol::Response::parse(&resp).unwrap();
        assert!(r.is_ok(), "{resp}");
        assert_eq!(r.u64_field("resolved_hi").unwrap(), 0);
        // Default clock stamps arrival ticks 0, 1, 2, ...
        let n = 64u64;
        let (resp, _) = core.handle(Request::Ingest {
            xs: (0..n).collect(),
            ys: (0..n).map(|i| i % 1024).collect(),
            ts: None,
        });
        assert!(resp.contains("\"accepted\""), "{resp}");
        let (resp, _) = core.handle(Request::WindowF2 { window: 32, c: 1023 });
        let r = protocol::Response::parse(&resp).unwrap();
        assert!(r.is_ok(), "{resp}");
        assert!(r.f64_field("value").unwrap() > 0.0);
        let lo = r.u64_field("resolved_lo").unwrap();
        let hi = r.u64_field("resolved_hi").unwrap();
        assert!(lo >= 32 && hi == 64, "resolved [{lo}, {hi})");
        // Explicit timestamps drive the window clock.
        let (resp, _) = core.handle(Request::Ingest {
            xs: vec![7, 7],
            ys: vec![1, 2],
            ts: Some(vec![1000, 990]),
        });
        assert!(resp.contains("\"accepted\":2"), "{resp}");
        let (resp, _) = core.handle(Request::WindowF0 { window: 16, c: 1023 });
        let r = protocol::Response::parse(&resp).unwrap();
        assert!(r.is_ok(), "{resp}");
        assert!(r.u64_field("resolved_hi").unwrap() > 1000);
    }
}
