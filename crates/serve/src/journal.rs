//! Crash-safe durability primitives: the write-ahead ingest journal, the
//! generation-numbered snapshot files, and the [`Storage`] abstraction the
//! fault-injection harness ([`crate::faults`]) hooks into.
//!
//! ## On-disk layout
//!
//! A durable directory holds two file families, both named by a
//! monotonically increasing **generation** number:
//!
//! ```text
//! snap-<g>.csrv      snapshot bundle (the CSRV container of crate::server)
//! journal-<g>.cjl    every ingest batch accepted AFTER snap-<g> was written
//! ```
//!
//! A snapshot rotation creates `journal-<g+1>` first, then atomically
//! publishes `snap-<g+1>` (write temp → fsync → rename → fsync dir), and
//! only then swaps the live journal — so at every instant the newest
//! *published* snapshot plus the journals at or above its generation
//! reconstruct the server exactly. Recovery restores the newest decodable
//! snapshot and replays those journals in ascending generation order,
//! falling back past a torn or corrupt snapshot to the previous generation
//! (the retention policy always keeps the previous good generation on disk).
//!
//! ## Journal frame format
//!
//! The journal reuses the little-endian [`cora_sketch::codec`] primitives
//! and the FNV-1a 64 checksum of the snapshot frames:
//!
//! ```text
//! file   = header record*
//! header = magic b"CJRN" | u16 version (1) | u64 generation
//! record = u32 payload_len | payload | u64 fnv1a64(payload)
//! payload = u8 meta                  bit 0: explicit timestamps follow
//!                                    bit 1: a (writer, seq) pair follows
//!           [u64 writer, u64 seq]    when meta bit 1
//!           u32 n
//!           n×u64 xs | n×u64 ys | [n×u64 ts]
//! ```
//!
//! [`scan_journal`] accepts the longest **valid prefix** of a journal: a
//! short or checksum-corrupt tail (a torn write from a crash mid-append) is
//! reported, not fatal — exactly the bounded-loss semantics the server's
//! fsync policy promises (an *acked* batch is never in the torn tail,
//! because the ack is only sent after the append is fsynced).

use cora_sketch::codec::{fnv1a64, ByteReader, ByteWriter};
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening every journal file.
pub const JOURNAL_MAGIC: [u8; 4] = *b"CJRN";

/// Journal format version; readers reject other versions.
pub const JOURNAL_VERSION: u16 = 1;

/// Byte length of the journal file header.
pub const JOURNAL_HEADER_BYTES: usize = 4 + 2 + 8;

/// An open append-only file handle, as seen by the journal writer. The
/// fault-injection harness wraps these to fail or tear specific writes.
pub trait AppendFile: Send {
    /// Append `bytes` at the end of the file.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Force appended bytes to stable storage (`fsync`).
    fn sync(&mut self) -> io::Result<()>;
}

/// The storage surface the durability layer runs on. Production uses
/// [`DiskStorage`]; the deterministic fault-injection tests substitute
/// [`crate::faults::FaultyStorage`] to fail the Nth write, tear an append
/// mid-record, or short-read a snapshot — without touching a real syscall's
/// worth of nondeterminism.
pub trait Storage: Send + Sync {
    /// Create `dir` (and parents) if missing.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// File names (not paths) directly inside `dir`; empty if `dir` is
    /// missing.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Open `path` for appending, creating it if missing.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>>;
    /// Durably publish `bytes` at `path`: write a temporary sibling, fsync
    /// it, rename it over `path`, and fsync the directory.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Delete a file; missing files are not an error.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem implementation of [`Storage`].
#[derive(Debug, Default)]
pub struct DiskStorage;

struct DiskAppend {
    file: fs::File,
}

impl AppendFile for DiskAppend {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// Best-effort directory fsync so a rename or create survives a power cut
/// (a failure here is ignored: some filesystems refuse directory handles).
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

impl Storage for DiskStorage {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let entries = match fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut names = Vec::new();
        for entry in entries {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>> {
        let file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(DiskAppend { file }))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            sync_dir(dir);
        }
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match fs::remove_file(path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// Path of generation `g`'s snapshot bundle inside `dir`.
pub fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation}.csrv"))
}

/// Path of generation `g`'s journal inside `dir`.
pub fn journal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("journal-{generation}.cjl"))
}

fn parse_generation(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

/// The durable files present in a directory: snapshot generations sorted
/// descending (newest first — the recovery probe order) and journal
/// generations sorted ascending (the replay order).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GenerationListing {
    /// Snapshot generations, newest first.
    pub snapshots: Vec<u64>,
    /// Journal generations, oldest first.
    pub journals: Vec<u64>,
}

/// Enumerate the durable files in `dir` (missing directory = empty listing).
/// Stray files — including the `.tmp` siblings a crash mid-publish can
/// leave behind — are ignored.
pub fn list_generations(storage: &dyn Storage, dir: &Path) -> io::Result<GenerationListing> {
    let mut listing = GenerationListing::default();
    for name in storage.list(dir)? {
        if let Some(g) = parse_generation(&name, "snap-", ".csrv") {
            listing.snapshots.push(g);
        } else if let Some(g) = parse_generation(&name, "journal-", ".cjl") {
            listing.journals.push(g);
        }
    }
    listing.snapshots.sort_unstable_by(|a, b| b.cmp(a));
    listing.journals.sort_unstable();
    Ok(listing)
}

/// One decoded journal record: an ingest batch exactly as the server
/// accepted it (timestamp lane included, so the windowed structures replay
/// onto the same pane ticks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// The `(writer, seq)` idempotency pair, when the client sent one.
    pub seq: Option<(u64, u64)>,
    /// The `(x, y)` tuples of the batch.
    pub tuples: Vec<(u64, u64)>,
    /// Explicit per-tuple timestamps, or empty for arrival-clock stamping.
    pub ts: Vec<u64>,
}

const META_HAS_TS: u8 = 1;
const META_HAS_SEQ: u8 = 2;

/// Encode one batch as a complete journal record (length prefix, payload,
/// checksum) appended to `out`.
pub fn encode_record_into(
    tuples: &[(u64, u64)],
    ts: &[u64],
    seq: Option<(u64, u64)>,
    out: &mut Vec<u8>,
) {
    debug_assert!(ts.is_empty() || ts.len() == tuples.len());
    let mut w = ByteWriter::new();
    let mut meta = 0u8;
    if !ts.is_empty() {
        meta |= META_HAS_TS;
    }
    if seq.is_some() {
        meta |= META_HAS_SEQ;
    }
    w.put_u8(meta);
    if let Some((writer, seq)) = seq {
        w.put_u64(writer);
        w.put_u64(seq);
    }
    w.put_u32(tuples.len() as u32);
    for &(x, _) in tuples {
        w.put_u64(x);
    }
    for &(_, y) in tuples {
        w.put_u64(y);
    }
    for &t in ts {
        w.put_u64(t);
    }
    let payload = w.as_bytes();
    out.reserve(payload.len() + 12);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
}

fn decode_payload(payload: &[u8]) -> Result<JournalRecord, String> {
    let mut r = ByteReader::new(payload);
    let e = |err: cora_sketch::codec::CodecError| err.to_string();
    let meta = r.get_u8().map_err(e)?;
    if meta & !(META_HAS_TS | META_HAS_SEQ) != 0 {
        return Err(format!("unknown journal record meta bits 0x{meta:02X}"));
    }
    let seq = if meta & META_HAS_SEQ != 0 {
        Some((r.get_u64().map_err(e)?, r.get_u64().map_err(e)?))
    } else {
        None
    };
    let n = r.get_u32().map_err(e)? as usize;
    let lanes = if meta & META_HAS_TS != 0 { 3 } else { 2 };
    if r.remaining() != n * 8 * lanes {
        return Err(format!(
            "journal record declares {n} tuples but carries {} value bytes",
            r.remaining()
        ));
    }
    let xs = r.take(n * 8).map_err(e)?;
    let ys = r.take(n * 8).map_err(e)?;
    let mut tuples = Vec::with_capacity(n);
    for (xc, yc) in xs.chunks_exact(8).zip(ys.chunks_exact(8)) {
        tuples.push((
            u64::from_le_bytes(xc.try_into().expect("8-byte chunk")),
            u64::from_le_bytes(yc.try_into().expect("8-byte chunk")),
        ));
    }
    let mut ts = Vec::new();
    if meta & META_HAS_TS != 0 {
        ts.reserve(n);
        for tc in r.take(n * 8).map_err(e)?.chunks_exact(8) {
            ts.push(u64::from_le_bytes(tc.try_into().expect("8-byte chunk")));
        }
    }
    Ok(JournalRecord { seq, tuples, ts })
}

/// The result of scanning a journal file: its header generation, the
/// records of the longest valid prefix, and what (if anything) stopped the
/// scan.
#[derive(Debug)]
pub struct JournalScan {
    /// The generation recorded in the file header.
    pub generation: u64,
    /// Every record of the valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes covered by the header plus the valid records.
    pub valid_bytes: usize,
    /// Why the scan stopped before the end of the file, if it did — a torn
    /// or corrupt tail that recovery drops.
    pub torn: Option<String>,
}

/// Scan journal `bytes`, accepting the longest valid prefix. A malformed
/// header is an error (the file is not a journal); a short or corrupt
/// *record* merely ends the scan and is reported via [`JournalScan::torn`].
pub fn scan_journal(bytes: &[u8]) -> Result<JournalScan, String> {
    if bytes.len() < JOURNAL_HEADER_BYTES {
        return Err(format!(
            "journal too short for its header: {} bytes",
            bytes.len()
        ));
    }
    if bytes[..4] != JOURNAL_MAGIC {
        return Err("not a cora-serve journal (bad magic)".into());
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != JOURNAL_VERSION {
        return Err(format!(
            "unsupported journal version {version} (this build reads {JOURNAL_VERSION})"
        ));
    }
    let generation = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
    let mut records = Vec::new();
    let mut pos = JOURNAL_HEADER_BYTES;
    let mut torn = None;
    while pos < bytes.len() {
        let stop = |detail: String| Some(format!("record {} at byte {pos}: {detail}", records.len()));
        if bytes.len() - pos < 4 {
            torn = stop("short length prefix".into());
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if bytes.len() - pos < 4 + len + 8 {
            torn = stop(format!("short record ({len}-byte payload declared)"));
            break;
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let stored =
            u64::from_le_bytes(bytes[pos + 4 + len..pos + 12 + len].try_into().expect("8 bytes"));
        if stored != fnv1a64(payload) {
            torn = stop("payload checksum mismatch".into());
            break;
        }
        match decode_payload(payload) {
            Ok(record) => records.push(record),
            Err(detail) => {
                torn = stop(detail);
                break;
            }
        }
        pos += 4 + len + 8;
    }
    Ok(JournalScan {
        generation,
        records,
        valid_bytes: pos,
        torn,
    })
}

/// The live write-ahead journal: an append handle plus the write-ordering
/// discipline. After any append or sync failure the writer is **poisoned**
/// — the on-disk tail can no longer be trusted, so every further append is
/// refused until a snapshot rotation opens a fresh generation (the server
/// surfaces those refusals as structured `io` errors and keeps serving
/// queries).
pub struct JournalWriter {
    file: Box<dyn AppendFile>,
    generation: u64,
    batches: u64,
    bytes: u64,
    poisoned: bool,
    scratch: Vec<u8>,
}

impl JournalWriter {
    /// Create the journal for `generation` inside `dir`, writing and
    /// syncing its header. Any half-written file from a failed earlier
    /// attempt at the same generation is removed first.
    pub fn create(storage: &dyn Storage, dir: &Path, generation: u64) -> io::Result<Self> {
        let path = journal_path(dir, generation);
        storage.remove(&path)?;
        let mut file = storage.open_append(&path)?;
        let mut header = Vec::with_capacity(JOURNAL_HEADER_BYTES);
        header.extend_from_slice(&JOURNAL_MAGIC);
        header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        header.extend_from_slice(&generation.to_le_bytes());
        file.append(&header)?;
        file.sync()?;
        Ok(Self {
            file,
            generation,
            batches: 0,
            bytes: JOURNAL_HEADER_BYTES as u64,
            poisoned: false,
            scratch: Vec::new(),
        })
    }

    /// The generation this journal belongs to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records appended since the journal was created.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Bytes written, header included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether an earlier write failure poisoned this journal.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Append one batch record, fsyncing afterwards when `fsync` is set.
    /// The record is on stable storage when this returns `Ok` under
    /// `fsync = true` — the server's precondition for acking the batch.
    pub fn append_batch(
        &mut self,
        tuples: &[(u64, u64)],
        ts: &[u64],
        seq: Option<(u64, u64)>,
        fsync: bool,
    ) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "journal poisoned by an earlier write failure; \
                 a snapshot rotation will open a fresh generation",
            ));
        }
        self.scratch.clear();
        encode_record_into(tuples, ts, seq, &mut self.scratch);
        if let Err(e) = self.file.append(&self.scratch) {
            self.poisoned = true;
            return Err(e);
        }
        if fsync {
            if let Err(e) = self.file.sync() {
                self.poisoned = true;
                return Err(e);
            }
        }
        self.batches += 1;
        self.bytes += self.scratch.len() as u64;
        Ok(())
    }
}

/// Convenience: the production storage as a shareable trait object.
pub fn disk_storage() -> Arc<dyn Storage> {
    Arc::new(DiskStorage)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cora_journal_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn records_round_trip_and_scan_accepts_valid_prefixes() {
        let dir = temp_dir("roundtrip");
        let storage = DiskStorage;
        let mut journal = JournalWriter::create(&storage, &dir, 3).unwrap();
        let batches = [
            (vec![(1u64, 10u64), (2, 20)], vec![], None),
            (vec![(3, 30)], vec![77u64], Some((9u64, 1u64))),
            (vec![], vec![], Some((9, 2))),
        ];
        for (tuples, ts, seq) in &batches {
            journal.append_batch(tuples, ts, *seq, true).unwrap();
        }
        assert_eq!(journal.batches(), 3);
        let bytes = storage.read(&journal_path(&dir, 3)).unwrap();
        assert_eq!(bytes.len() as u64, journal.bytes());
        let scan = scan_journal(&bytes).unwrap();
        assert_eq!(scan.generation, 3);
        assert!(scan.torn.is_none());
        assert_eq!(scan.valid_bytes, bytes.len());
        assert_eq!(scan.records.len(), 3);
        for (record, (tuples, ts, seq)) in scan.records.iter().zip(&batches) {
            assert_eq!(&record.tuples, tuples);
            assert_eq!(&record.ts, ts);
            assert_eq!(&record.seq, seq);
        }
        // Every truncation point past the header yields a valid prefix —
        // the torn-tail semantics recovery depends on. A cut exactly on a
        // record boundary is indistinguishable from a clean shutdown, so
        // only mid-record cuts report a tear.
        let mut boundaries = vec![JOURNAL_HEADER_BYTES];
        for record in &scan.records {
            let mut encoded = Vec::new();
            encode_record_into(&record.tuples, &record.ts, record.seq, &mut encoded);
            boundaries.push(boundaries.last().unwrap() + encoded.len());
        }
        for cut in JOURNAL_HEADER_BYTES..bytes.len() {
            let scan = scan_journal(&bytes[..cut]).unwrap();
            assert!(scan.records.len() < 3, "cut at {cut} kept all records");
            assert_eq!(
                scan.torn.is_some(),
                !boundaries.contains(&cut),
                "cut at {cut} misreported tear state"
            );
            assert!(scan.valid_bytes <= cut);
        }
        // A flipped payload byte stops the scan at the corrupt record.
        let mut corrupt = bytes.clone();
        corrupt[JOURNAL_HEADER_BYTES + 6] ^= 0x10;
        let scan = scan_journal(&corrupt).unwrap();
        assert_eq!(scan.records.len(), 0);
        assert!(scan.torn.unwrap().contains("checksum"));
        // Headers are strict.
        assert!(scan_journal(b"CJRN").is_err());
        assert!(scan_journal(b"XXXXXXXXXXXXXXXX").is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn listing_names_generations_and_ignores_strays() {
        let dir = temp_dir("listing");
        let storage = DiskStorage;
        for name in ["snap-3.csrv", "snap-10.csrv", "journal-3.cjl", "journal-10.cjl",
                     "snap-4.csrv.tmp", "notes.txt"] {
            fs::write(dir.join(name), b"x").unwrap();
        }
        let listing = list_generations(&storage, &dir).unwrap();
        assert_eq!(listing.snapshots, vec![10, 3]);
        assert_eq!(listing.journals, vec![3, 10]);
        let missing = list_generations(&storage, &dir.join("nope")).unwrap();
        assert!(missing.snapshots.is_empty() && missing.journals.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = temp_dir("atomic");
        let storage = DiskStorage;
        let path = snapshot_path(&dir, 1);
        storage.write_atomic(&path, b"first").unwrap();
        storage.write_atomic(&path, b"second").unwrap();
        assert_eq!(storage.read(&path).unwrap(), b"second");
        assert_eq!(
            list_generations(&storage, &dir).unwrap().snapshots,
            vec![1]
        );
        storage.remove(&path).unwrap();
        storage.remove(&path).unwrap(); // idempotent
        let _ = fs::remove_dir_all(&dir);
    }
}
