//! A small blocking client for the [`server`](crate::server), speaking
//! either wire protocol.
//!
//! [`ServeClient::connect`] opens a newline-JSON connection;
//! [`ServeClient::connect_binary`] opens a [binary-framed](crate::wire)
//! one. Every typed method works identically on both — same answers,
//! byte-identical field text — so transports are interchangeable. Binary
//! connections additionally support **pipelined ingest**: stream batches
//! with [`ServeClient::ingest_noack`] (no per-batch round trip), then call
//! [`ServeClient::sync`] to flush the pipe and surface any errors:
//!
//! ```no_run
//! # use cora_serve::client::ServeClient;
//! # let addr = "127.0.0.1:9999";
//! let mut client = ServeClient::connect_binary(addr).unwrap();
//! for chunk in (0..100_000u64).collect::<Vec<_>>().chunks(1_000) {
//!     let batch: Vec<(u64, u64)> = chunk.iter().map(|&i| (i % 700, i % 4096)).collect();
//!     client.ingest_noack(&batch).unwrap(); // queued, not awaited
//! }
//! client.sync().unwrap(); // one round trip for the whole load
//! ```
//!
//! One request, one response, in order, over a single TCP connection —
//! exactly what the example binary, the `serve_latency` bench, and the CI
//! serve-smoke step need. Concurrency comes from opening more clients (the
//! server multiplexes connections over a small worker pool).

use crate::protocol::{Request, Response, SetOp};
use crate::wire::{self, DecodedReply};
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A structured server-side failure: the protocol's error `kind`
/// (`"request"`, `"sketch"`, `"io"`, or `"server"`) plus its message. Both
/// transports carry the same pair, so retry policy can branch on `kind`
/// without parsing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// The error kind tag.
    pub kind: String,
    /// The human-readable detail.
    pub message: String,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind, self.message)
    }
}

/// Errors talking to a serve instance.
#[derive(Debug)]
pub enum ClientError {
    /// Socket I/O failed (including the server closing the connection).
    Io(std::io::Error),
    /// A configured socket timeout elapsed before the server answered.
    Timeout(std::io::Error),
    /// The response line was not valid protocol JSON.
    Protocol(String),
    /// The server answered `{"ok":false,...}`.
    Server(ServerError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Timeout(e) => write!(f, "timed out: {e}"),
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
            ClientError::Server(e) => write!(f, "server {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        // Read/write timeouts surface as TimedOut or WouldBlock depending
        // on the platform; both mean "the configured timeout elapsed".
        match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                ClientError::Timeout(e)
            }
            _ => ClientError::Io(e),
        }
    }
}

impl ClientError {
    /// Build the structured server error from a parsed error response.
    fn from_response(response: &Response, message: String) -> Self {
        ClientError::Server(ServerError {
            kind: response
                .error_kind()
                .unwrap_or_else(|| "server".to_string()),
            message,
        })
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// A reported heavy hitter (client-side mirror of
/// [`cora_core::HeavyHitter`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ReportedHitter {
    /// The item identifier.
    pub item: u64,
    /// Estimated frequency among tuples with `y ≤ c`.
    pub frequency: f64,
    /// Estimated squared-frequency share of `F_2(c)`.
    pub share: f64,
}

/// A window query's answer: the estimate plus the pane-aligned span
/// `[resolved_lo, resolved_hi)` it actually covers (see
/// `cora_stream::windowed` for the resolution semantics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowAnswer {
    /// The windowed correlated estimate.
    pub value: f64,
    /// Inclusive start tick of the resolved span.
    pub resolved_lo: u64,
    /// Exclusive end tick of the resolved span.
    pub resolved_hi: u64,
}

/// Which wire protocol a connection speaks (fixed at connect time; the
/// server sniffs the first byte and never switches mid-stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Json,
    Binary,
}

/// A blocking connection to a running serve instance.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    mode: Mode,
}

impl ServeClient {
    /// Connect to a server (e.g. the address from
    /// [`RunningServer::local_addr`](crate::server::RunningServer::local_addr))
    /// speaking the newline-JSON line protocol.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::connect_mode(addr, Mode::Json, None)
    }

    /// Connect speaking the [binary frame protocol](crate::wire) — same
    /// request surface and byte-identical answers, plus pipelined ingest
    /// ([`Self::ingest_noack`] / [`Self::sync`]).
    pub fn connect_binary<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::connect_mode(addr, Mode::Binary, None)
    }

    /// [`Self::connect`] with a bound on the TCP connect itself. The plain
    /// constructors inherit the OS connect timeout (which can be minutes);
    /// this one fails fast when the server is unreachable, which is what
    /// retry loops and replication links need.
    pub fn connect_timeout<A: ToSocketAddrs>(addr: A, timeout: Duration) -> std::io::Result<Self> {
        Self::connect_mode(addr, Mode::Json, Some(timeout))
    }

    /// [`Self::connect_binary`] with a bound on the TCP connect itself.
    pub fn connect_binary_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> std::io::Result<Self> {
        Self::connect_mode(addr, Mode::Binary, Some(timeout))
    }

    fn connect_mode<A: ToSocketAddrs>(
        addr: A,
        mode: Mode,
        timeout: Option<Duration>,
    ) -> std::io::Result<Self> {
        let stream = match timeout {
            None => TcpStream::connect(addr)?,
            // `TcpStream::connect_timeout` takes one resolved address, so
            // walk the candidates (v4/v6) like `connect` does and keep the
            // last failure for the error message.
            Some(timeout) => {
                let mut last_err = None;
                let mut connected = None;
                for candidate in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&candidate, timeout) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                match connected {
                    Some(stream) => stream,
                    None => {
                        return Err(last_err.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to no socket addresses",
                            )
                        }))
                    }
                }
            }
        };
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer: BufWriter::new(writer),
            mode,
        })
    }

    /// Whether this connection speaks the binary frame protocol.
    pub fn is_binary(&self) -> bool {
        self.mode == Mode::Binary
    }

    /// Configure socket read/write timeouts (`None` = block forever, the
    /// default). A request outlasting a timeout fails with
    /// [`ClientError::Timeout`]; the connection should then be considered
    /// broken (a late response would desynchronize the stream) — reconnect,
    /// or let [`RetryingClient`](crate::retry::RetryingClient) do it.
    pub fn set_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(read)?;
        self.writer.get_ref().set_write_timeout(write)
    }

    /// Send one request and read its response.
    pub fn request(&mut self, request: &Request) -> ClientResult<Response> {
        match self.mode {
            Mode::Json => self.request_json(request),
            Mode::Binary => {
                let frame = wire::encode_request(request, 0);
                let expect = frame[2];
                self.writer.write_all(&frame)?;
                self.writer.flush()?;
                self.read_reply(expect)
            }
        }
    }

    fn request_json(&mut self, request: &Request) -> ClientResult<Response> {
        let line = request.encode();
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response_line = String::new();
        let n = self.reader.read_line(&mut response_line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let response = Response::parse(response_line.trim()).map_err(ClientError::Protocol)?;
        if let Some(message) = response.error_message() {
            return Err(ClientError::from_response(&response, message));
        }
        Ok(response)
    }

    /// Read one binary frame: `(opcode, flags, payload)`.
    fn read_frame(&mut self) -> ClientResult<(u8, u8, Vec<u8>)> {
        let mut header = [0u8; wire::HEADER_BYTES];
        self.reader.read_exact(&mut header)?;
        let header =
            wire::parse_header(&header).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let mut payload = vec![0u8; header.len];
        self.reader.read_exact(&mut payload)?;
        Ok((header.opcode, header.flags, payload))
    }

    /// Read the response to a just-sent binary request. An error frame for
    /// an earlier pipelined (`NO_ACK`) ingest may arrive first; it is
    /// surfaced as the failure it is rather than silently dropped.
    fn read_reply(&mut self, expect: u8) -> ClientResult<Response> {
        let (opcode, flags, payload) = self.read_frame()?;
        let reply = wire::decode_reply(flags, &payload).map_err(ClientError::Protocol)?;
        match reply {
            DecodedReply::Error { kind, message } => {
                Err(ClientError::Server(ServerError { kind, message }))
            }
            DecodedReply::Ok(_) if opcode != expect => Err(ClientError::Protocol(format!(
                "response opcode 0x{opcode:02X} does not match request 0x{expect:02X}"
            ))),
            DecodedReply::Ok(fields) => Ok(Response::from_fields(
                fields
                    .into_iter()
                    .map(|(key, value)| (key, value.render_json()))
                    .collect(),
            )),
        }
    }

    /// Queue one ingest batch **without waiting for its response** (binary
    /// connections only). The batch is framed with `NO_ACK`: the server
    /// suppresses the success response and answers only on error. Call
    /// [`Self::sync`] to flush the pipe and learn whether every queued
    /// batch was accepted.
    pub fn ingest_noack(&mut self, tuples: &[(u64, u64)]) -> ClientResult<()> {
        self.ingest_noack_seq(tuples, None)
    }

    /// [`Self::ingest_noack`] with an optional `(writer, seq)` idempotency
    /// pair. A sequence-tagged batch can be blindly resent after a
    /// reconnect: the server acks already-applied sequence numbers as
    /// duplicates instead of double-counting them.
    pub fn ingest_noack_seq(
        &mut self,
        tuples: &[(u64, u64)],
        seq: Option<(u64, u64)>,
    ) -> ClientResult<()> {
        if self.mode != Mode::Binary {
            return Err(ClientError::Protocol(
                "pipelined no-ack ingest requires a binary connection".into(),
            ));
        }
        let frame = wire::encode_ingest(tuples, None, seq, wire::FLAG_NO_ACK);
        self.writer.write_all(&frame)?;
        Ok(())
    }

    /// Pipelining sync point: flush queued frames, then round-trip a ping
    /// and drain everything ahead of its reply. Returns the first pipelined
    /// ingest error, if any batch since the last sync was rejected. On JSON
    /// connections (where every request is answered synchronously) this is
    /// just a ping.
    pub fn sync(&mut self) -> ClientResult<()> {
        if self.mode == Mode::Json {
            return self.ping();
        }
        self.writer.write_all(&wire::encode_request(&Request::Ping, 0))?;
        self.writer.flush()?;
        let mut first_error: Option<ServerError> = None;
        loop {
            let (opcode, flags, payload) = self.read_frame()?;
            let reply = wire::decode_reply(flags, &payload).map_err(ClientError::Protocol)?;
            if opcode == wire::Opcode::Ping as u8 {
                return match (first_error, reply) {
                    (Some(error), _) => Err(ClientError::Server(error)),
                    (None, DecodedReply::Error { kind, message }) => {
                        Err(ClientError::Server(ServerError { kind, message }))
                    }
                    (None, DecodedReply::Ok(_)) => Ok(()),
                };
            }
            match reply {
                DecodedReply::Error { kind, message } => {
                    first_error.get_or_insert(ServerError { kind, message });
                }
                DecodedReply::Ok(_) => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected success frame 0x{opcode:02X} while draining the pipe"
                    )))
                }
            }
        }
    }

    /// Stream `tuples` as pipelined no-ack batches of `batch` tuples, then
    /// [`Self::sync`] once — a bulk load with a single round trip (binary
    /// connections only).
    pub fn ingest_pipelined(&mut self, tuples: &[(u64, u64)], batch: usize) -> ClientResult<()> {
        for chunk in tuples.chunks(batch.max(1)) {
            self.ingest_noack(chunk)?;
        }
        self.sync()
    }

    /// Liveness check.
    pub fn ping(&mut self) -> ClientResult<()> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// The server's construction parameters as raw `(key, value)` pairs.
    pub fn config(&mut self) -> ClientResult<Response> {
        self.request(&Request::Config)
    }

    /// Batch-ingest `(x, y)` tuples; returns the accepted count. The server
    /// stamps each tuple with its arrival tick (see [`Self::ingest_at`] for
    /// explicit timestamps).
    pub fn ingest(&mut self, tuples: &[(u64, u64)]) -> ClientResult<u64> {
        self.ingest_seq(tuples, None)
    }

    /// [`Self::ingest`] with an optional `(writer, seq)` idempotency pair;
    /// a batch at or below the writer's high-water mark on the server is
    /// acked with `accepted = 0` instead of being applied twice.
    pub fn ingest_seq(
        &mut self,
        tuples: &[(u64, u64)],
        seq: Option<(u64, u64)>,
    ) -> ClientResult<u64> {
        let response = match self.mode {
            Mode::Binary => {
                // Frame straight from the tuple slice — no xs/ys splits.
                let frame = wire::encode_ingest(tuples, None, seq, 0);
                self.writer.write_all(&frame)?;
                self.writer.flush()?;
                self.read_reply(wire::Opcode::Ingest as u8)?
            }
            Mode::Json => {
                let xs: Vec<u64> = tuples.iter().map(|&(x, _)| x).collect();
                let ys: Vec<u64> = tuples.iter().map(|&(_, y)| y).collect();
                self.request(&Request::Ingest { xs, ys, ts: None, seq })?
            }
        };
        response.u64_field("accepted").map_err(ClientError::Protocol)
    }

    /// Batch-ingest `(x, y, t)` tuples with explicit timestamps (ticks) for
    /// the windowed structures; timestamps may be out of order.
    pub fn ingest_at(&mut self, tuples: &[(u64, u64, u64)]) -> ClientResult<u64> {
        let xs: Vec<u64> = tuples.iter().map(|&(x, _, _)| x).collect();
        let ys: Vec<u64> = tuples.iter().map(|&(_, y, _)| y).collect();
        let ts: Vec<u64> = tuples.iter().map(|&(_, _, t)| t).collect();
        let response = self.request(&Request::Ingest { xs, ys, ts: Some(ts), seq: None })?;
        response.u64_field("accepted").map_err(ClientError::Protocol)
    }

    /// Read-your-writes barrier: drains the ingest workers and waits for the
    /// published composite to cover everything accepted so far.
    pub fn flush(&mut self) -> ClientResult<()> {
        self.request(&Request::Flush).map(|_| ())
    }

    /// Correlated `F_2` at threshold `c` (served from the epoch-published
    /// composite; see the staleness bound in the crate docs).
    pub fn query_f2(&mut self, c: u64) -> ClientResult<f64> {
        let response = self.request(&Request::QueryF2 { c })?;
        response.f64_field("value").map_err(ClientError::Protocol)
    }

    /// Correlated distinct count at threshold `c`.
    pub fn query_f0(&mut self, c: u64) -> ClientResult<f64> {
        let response = self.request(&Request::QueryF0 { c })?;
        response.f64_field("value").map_err(ClientError::Protocol)
    }

    /// Correlated rarity at threshold `c`.
    pub fn query_rarity(&mut self, c: u64) -> ClientResult<f64> {
        let response = self.request(&Request::QueryRarity { c })?;
        response.f64_field("value").map_err(ClientError::Protocol)
    }

    /// Correlated `F_2`-heavy hitters at threshold `c` with share `phi`,
    /// sorted by decreasing share.
    pub fn query_heavy_hitters(&mut self, c: u64, phi: f64) -> ClientResult<Vec<ReportedHitter>> {
        let response = self.request(&Request::QueryHeavyHitters { c, phi })?;
        let items = response.u64_array_field("items").map_err(ClientError::Protocol)?;
        let frequencies = response
            .f64_array_field("frequencies")
            .map_err(ClientError::Protocol)?;
        let shares = response
            .f64_array_field("shares")
            .map_err(ClientError::Protocol)?;
        if items.len() != frequencies.len() || items.len() != shares.len() {
            return Err(ClientError::Protocol(
                "heavy-hitter arrays have mismatched lengths".into(),
            ));
        }
        Ok(items
            .into_iter()
            .zip(frequencies)
            .zip(shares)
            .map(|((item, frequency), share)| ReportedHitter {
                item,
                frequency,
                share,
            })
            .collect())
    }

    /// Windowed correlated `F_2` over the last `window` ticks at threshold
    /// `c`: the estimate plus the pane-aligned resolved span it covers.
    pub fn query_window_f2(&mut self, window: u64, c: u64) -> ClientResult<WindowAnswer> {
        self.window_request(&Request::WindowF2 { window, c })
    }

    /// Windowed correlated `F_0` over the last `window` ticks at threshold
    /// `c`: the estimate plus the pane-aligned resolved span it covers.
    pub fn query_window_f0(&mut self, window: u64, c: u64) -> ClientResult<WindowAnswer> {
        self.window_request(&Request::WindowF0 { window, c })
    }

    fn window_request(&mut self, request: &Request) -> ClientResult<WindowAnswer> {
        let response = self.request(request)?;
        Ok(WindowAnswer {
            value: response.f64_field("value").map_err(ClientError::Protocol)?,
            resolved_lo: response.u64_field("resolved_lo").map_err(ClientError::Protocol)?,
            resolved_hi: response.u64_field("resolved_hi").map_err(ClientError::Protocol)?,
        })
    }

    /// Service and structure statistics as a parsed response (field access
    /// via [`Response::u64_field`] etc.).
    pub fn stats(&mut self) -> ClientResult<Response> {
        self.request(&Request::Stats)
    }

    /// Ask the server to write a snapshot bundle to a server-side path;
    /// returns the bundle size in bytes.
    pub fn snapshot(&mut self, path: &str) -> ClientResult<u64> {
        let response = self.request(&Request::Snapshot {
            path: path.to_string(),
        })?;
        response.u64_field("bytes").map_err(ClientError::Protocol)
    }

    /// Force a durable snapshot rotation on a durability-enabled server
    /// (the `snapshot` op with an empty path); returns the new generation
    /// number.
    pub fn snapshot_rotate(&mut self) -> ClientResult<u64> {
        let response = self.request(&Request::Snapshot { path: String::new() })?;
        response.u64_field("generation").map_err(ClientError::Protocol)
    }

    /// Ask the server to stop accepting connections.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.request(&Request::Shutdown).map(|_| ())
    }

    /// Present the shared-secret token. On a server started with
    /// [`ServeConfig::auth_token`](crate::server::ServeConfig::auth_token)
    /// set, every other op on this connection fails with a `request` error
    /// until this succeeds; on an open server it is a no-op.
    pub fn auth(&mut self, token: &str) -> ClientResult<()> {
        self.request(&Request::Auth { token: token.to_string() }).map(|_| ())
    }

    /// Set-expression distinct count over two named streams on an
    /// **aggregator** node: the estimate of `|A op B|` restricted to tuples
    /// with `y ≤ c`.
    pub fn set_f0(&mut self, a: &str, b: &str, op: SetOp, c: u64) -> ClientResult<f64> {
        let response = self.request(&Request::SetF0 {
            a: a.to_string(),
            b: b.to_string(),
            op,
            c,
        })?;
        response.f64_field("value").map_err(ClientError::Protocol)
    }

    /// The stream names registered on an aggregator node, sorted.
    pub fn streams(&mut self) -> ClientResult<Vec<String>> {
        let response = self.request(&Request::Streams)?;
        let joined = response.str_field("streams").map_err(ClientError::Protocol)?;
        Ok(if joined.is_empty() {
            Vec::new()
        } else {
            joined.split(',').map(str::to_string).collect()
        })
    }

    /// Replication handshake with an aggregator: registers `stream`,
    /// verifies `fingerprint` compatibility, announces the replica's
    /// current generation, and returns the aggregator's high-water
    /// generation for that stream (0 = expects a full snapshot).
    pub fn repl_hello(&mut self, stream: &str, fingerprint: u64, g_to: u64) -> ClientResult<u64> {
        let response = self.repl_request(&Request::ReplHello {
            stream: stream.to_string(),
            fingerprint,
            g_to,
        })?;
        response.u64_field("high_water").map_err(ClientError::Protocol)
    }

    /// Ship one sealed delta container (binary connections only); returns
    /// the aggregator's new high-water generation.
    pub fn repl_delta(&mut self, stream: &str, frame: Vec<u8>) -> ClientResult<u64> {
        let response = self.repl_request(&Request::ReplDelta {
            stream: stream.to_string(),
            frame,
        })?;
        response.u64_field("high_water").map_err(ClientError::Protocol)
    }

    /// Ship one full replacement snapshot container (`g_from = 0`, binary
    /// connections only); returns the aggregator's new high-water
    /// generation.
    pub fn repl_snapshot(&mut self, stream: &str, frame: Vec<u8>) -> ClientResult<u64> {
        let response = self.repl_request(&Request::ReplSnapshot {
            stream: stream.to_string(),
            frame,
        })?;
        response.u64_field("high_water").map_err(ClientError::Protocol)
    }

    /// Send a replication request. On the binary protocol the server
    /// answers every `Repl*` request with a `ReplAck` frame (not an echo of
    /// the request opcode), so this bypasses [`Self::request`]'s
    /// echo-opcode check.
    fn repl_request(&mut self, request: &Request) -> ClientResult<Response> {
        match self.mode {
            Mode::Json => match request {
                // The payload-carrying ops cannot travel as JSON; refuse
                // client-side instead of sending a frame-less stub.
                Request::ReplDelta { .. } | Request::ReplSnapshot { .. } => {
                    Err(ClientError::Protocol(
                        "replication payloads require a binary connection".into(),
                    ))
                }
                _ => self.request_json(request),
            },
            Mode::Binary => {
                let frame = wire::encode_request(request, 0);
                self.writer.write_all(&frame)?;
                self.writer.flush()?;
                self.read_reply(wire::Opcode::ReplAck as u8)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{start, start_restored, ServeConfig};

    fn test_config() -> ServeConfig {
        ServeConfig {
            epsilon: 0.25,
            delta: 0.1,
            y_max: 4095,
            max_stream_len: 100_000,
            seed: 7,
            shards: 2,
            merge_every: 1,
            phi: 0.05,
            x_domain_log2: 16,
            pane_ticks: 256,
            pane_k: 4,
            pane_retention: None,
            max_connections: 1_024,
            durability: None,
            auth_token: None,
            replicate: None,
        }
    }

    #[test]
    fn end_to_end_ingest_query_snapshot_restart() {
        let server = start(test_config(), "127.0.0.1:0").unwrap();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        client.ping().unwrap();
        assert_eq!(
            client.config().unwrap().u64_field("y_max").unwrap(),
            4095
        );

        // Ingest a stream with a planted heavy hitter.
        let mut tuples: Vec<(u64, u64)> = Vec::new();
        for i in 0..4_000u64 {
            tuples.push((7, i % 1000));
            tuples.push((1000 + (i % 300), (i * 13) % 4096));
        }
        // Singleton items so rarity is non-zero.
        for i in 0..100u64 {
            tuples.push((50_000 + i, (i * 41) % 4096));
        }
        for chunk in tuples.chunks(500) {
            assert_eq!(client.ingest(chunk).unwrap(), chunk.len() as u64);
        }
        client.flush().unwrap();

        let thresholds: Vec<u64> = (0..=4096).step_by(512).collect();
        let f2: Vec<f64> = thresholds.iter().map(|&c| client.query_f2(c).unwrap()).collect();
        let f0: Vec<f64> = thresholds.iter().map(|&c| client.query_f0(c).unwrap()).collect();
        let rarity: Vec<f64> =
            thresholds.iter().map(|&c| client.query_rarity(c).unwrap()).collect();
        let hitters = client.query_heavy_hitters(999, 0.2).unwrap();
        assert!(f2.iter().all(|&v| v >= 0.0) && f2[8] > 0.0);
        assert!(f0[8] > 0.0 && rarity[8] > 0.0);
        assert!(hitters.iter().any(|h| h.item == 7), "hitters: {hitters:?}");

        // Windowed queries over the server's arrival-tick clock: the full
        // stream fits in one suffix window, and a shorter window resolves a
        // pane-aligned strict suffix.
        let windows: Vec<u64> = vec![512, 2_048, 16_384];
        let wf2: Vec<WindowAnswer> =
            windows.iter().map(|&w| client.query_window_f2(w, 4096).unwrap()).collect();
        let wf0: Vec<WindowAnswer> =
            windows.iter().map(|&w| client.query_window_f0(w, 4096).unwrap()).collect();
        assert_eq!(wf2[2].resolved_lo, 0);
        // 8_100 arrival ticks land in panes tiling [0, 8_192) at 256/pane.
        assert_eq!(wf2[2].resolved_hi, 8_192);
        assert!(wf2[0].resolved_lo > 0 && wf2[0].value > 0.0);
        assert!(wf0[2].value > 0.0);

        let stats = client.stats().unwrap();
        assert_eq!(stats.u64_field("items_accepted").unwrap(), 8_100);
        assert_eq!(stats.u64_field("composite_items").unwrap(), 8_100);
        assert_eq!(stats.u64_field("staleness_batches").unwrap(), 0);

        // Snapshot, restart, and require bit-identical answers.
        let dir = std::env::temp_dir().join(format!("cora_serve_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.snap");
        let bytes = client.snapshot(path.to_str().unwrap()).unwrap();
        assert!(bytes > 0);
        client.shutdown_server().unwrap();
        drop(client);
        server.shutdown();

        let bundle = std::fs::read(&path).unwrap();
        let restored = start_restored(test_config(), "127.0.0.1:0", &bundle).unwrap();
        let mut client = ServeClient::connect(restored.local_addr()).unwrap();
        client.flush().unwrap();
        for (i, &c) in thresholds.iter().enumerate() {
            assert_eq!(client.query_f2(c).unwrap(), f2[i], "f2 at c={c}");
            assert_eq!(client.query_f0(c).unwrap(), f0[i], "f0 at c={c}");
            assert_eq!(client.query_rarity(c).unwrap(), rarity[i], "rarity at c={c}");
        }
        assert_eq!(client.query_heavy_hitters(999, 0.2).unwrap(), hitters);
        for (i, &w) in windows.iter().enumerate() {
            assert_eq!(client.query_window_f2(w, 4096).unwrap(), wf2[i], "window f2 w={w}");
            assert_eq!(client.query_window_f0(w, 4096).unwrap(), wf0[i], "window f0 w={w}");
        }

        // The restored server keeps serving ingest, resuming the tick clock
        // where the snapshot left off; explicit timestamps also work.
        client.ingest(&[(42, 1), (42, 2)]).unwrap();
        client.ingest_at(&[(43, 3, 9_000)]).unwrap();
        let after = client.query_window_f2(16_384, 4096).unwrap();
        // t = 9_000 lands in the base pane [8_960, 9_216).
        assert_eq!(after.resolved_hi, 9_216);
        assert!(after.value > wf2[2].value);
        client.flush().unwrap();
        client.flush().unwrap();
        assert!(client.query_f2(4095).unwrap() > f2[8]);
        drop(client);
        restored.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_rejects_mismatched_config_and_garbage() {
        let server = start(test_config(), "127.0.0.1:0").unwrap();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        client.ingest(&[(1, 1), (2, 2)]).unwrap();
        let dir = std::env::temp_dir().join(format!("cora_serve_rej_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.snap");
        client.snapshot(path.to_str().unwrap()).unwrap();
        drop(client);
        server.shutdown();

        let bundle = std::fs::read(&path).unwrap();
        let mut other = test_config();
        other.seed = 99;
        assert!(start_restored(other, "127.0.0.1:0", &bundle).is_err());
        // Fields invisible to the F2 config check must still be validated.
        let mut other = test_config();
        other.x_domain_log2 = 20;
        assert!(start_restored(other, "127.0.0.1:0", &bundle).is_err());
        let mut other = test_config();
        other.phi = 0.2;
        assert!(start_restored(other, "127.0.0.1:0", &bundle).is_err());
        assert!(start_restored(test_config(), "127.0.0.1:0", b"garbage").is_err());
        let mut corrupt = bundle;
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 8;
        assert!(start_restored(test_config(), "127.0.0.1:0", &corrupt).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_op_alone_stops_the_listener() {
        let server = start(test_config(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let mut client = ServeClient::connect(addr).unwrap();
        client.shutdown_server().unwrap();
        drop(client);
        // The op must wake the blocked acceptor by itself: once it exits,
        // the listener is closed and a fresh request gets no response
        // (connection refused, reset, or EOF) within the read window.
        let died = (0..100).any(|_| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            match ServeClient::connect(addr) {
                Err(_) => true, // refused: listener gone
                Ok(mut c) => c.ping().is_err(),
            }
        });
        assert!(died, "listener still serving after the shutdown op");
        server.shutdown(); // idempotent
    }

    #[test]
    fn bad_requests_get_error_responses_not_disconnects() {
        let server = start(test_config(), "127.0.0.1:0").unwrap();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        // Out-of-range y.
        let err = client.ingest(&[(1, 999_999)]).unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "{err}");
        // The connection survives and keeps working.
        client.ping().unwrap();
        assert_eq!(client.ingest(&[(1, 5)]).unwrap(), 1);
        drop(client);
        server.shutdown();
    }
}
