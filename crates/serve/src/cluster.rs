//! Distributed fan-in: the replication link and the aggregator node.
//!
//! ## Topology
//!
//! ```text
//!   ingest node A ──┐  REPL_HELLO / REPL_DELTA / REPL_SNAPSHOT
//!   (ServeConfig::  ├─────────────► aggregator (start_aggregator)
//!    replicate)     │                 stream "A": F2 + F0 + rarity + HH
//!   ingest node B ──┘                 stream "B": F2 + F0 + rarity + HH
//!                                     union composite (lazy, epoch-cached)
//!        queries (f2/f0/rarity/hh) ───► answered over the union
//!        set_f0 a=A b=B op=union|intersect|diff ───► inclusion–exclusion
//! ```
//!
//! The whole design rests on **Property V (mergeability)**: sketches built
//! from the same seed and geometry merge into a valid sketch of the union
//! stream, carrying the same `(ε, δ)` guarantee. An ingest node therefore
//! replicates by feeding every tuple to a second, same-seeded *delta*
//! sketch and periodically shipping that delta
//! ([`crate::server::ServeConfig::replicate`]); the aggregator merges each
//! delta into its per-stream state and answers queries with the accuracy
//! of a server that streamed the tuples directly. (Below the framework's
//! bucket-eviction threshold the merged state is even *bit-identical* to
//! direct ingestion — the regime the integration tests pin down exactly;
//! past it, merged and direct answers are `ε`-equivalent estimates.)
//!
//! ## Chain discipline
//!
//! Every shipped container carries `(g_from, g_to]` generation bounds and a
//! configuration fingerprint. The aggregator accepts a delta only when
//! `g_from` equals its high-water generation for that stream; anything else
//! is answered with a `request` error and the replica falls back to a
//! **full resync** (`g_from = 0`, a replacement snapshot). A replica whose
//! unacked backlog exceeds
//! [`crate::server::ReplicateConfig::max_pending`] collapses the backlog
//! into one full resync instead of queueing unboundedly.
//!
//! ## Warm standby
//!
//! [`start_aggregator_seeded`] pre-loads a stream's state from an upstream
//! durable directory (newest readable snapshot plus journal replay — the
//! same recovery walk the ingest node itself performs), so an aggregator
//! can serve queries for a dead upstream immediately. The seeded stream's
//! high water stays 0: when the upstream returns, its first handshake sees
//! `high_water = 0` and ships a full resync, replacing the seeded state
//! exactly (never double-counting it).
//!
//! ## Set-expression accuracy
//!
//! `set_f0` estimates `|A ∪ B|` directly from the merged samplers (Property
//! V, so the union estimate carries the same `(ε, δ)` guarantee as any
//! single-stream `F_0`). `|A ∩ B|` and `|A ∖ B|` come from
//! inclusion–exclusion over three estimates, so their *absolute* errors add:
//! the result is within `ε(|A| + |B| + |A ∪ B|)` of truth, which is only a
//! weak *relative* guarantee when the intersection is small. The reply
//! carries the three raw estimates alongside the value so callers can judge.

use crate::client::{ClientError, ServeClient};
use crate::protocol::{Reply, Request, SetOp, Value};
use crate::server::{
    recover, spawn_acceptor, Bundle, ReplCut, ReplicateConfig, RunningServer, ServeConfig,
    ServeError, ServerCore, ServiceCore, REPL_SECTION_F0, REPL_SECTION_F2, REPL_SECTION_HH,
    REPL_SECTION_RARITY,
};
use cora_core::snapshot::open_delta;
use cora_core::{
    CoreError, CorrelatedF0, CorrelatedHeavyHitters, CorrelatedRarity, CorrelatedSketch,
    F2Aggregate,
};
use std::collections::{BTreeMap, VecDeque};
use std::net::TcpListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Whether `name` can label a replicated stream: 1–64 bytes of
/// `[A-Za-z0-9_.-]` (it travels in wire frames and doubles as a map key).
pub(crate) fn valid_stream_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
}

/// One upstream stream's merged state on the aggregator.
struct StreamState {
    f2: CorrelatedSketch<F2Aggregate>,
    f0: CorrelatedF0,
    rarity: CorrelatedRarity,
    hh: CorrelatedHeavyHitters,
    /// The replication generation this state covers; a delta must chain
    /// from exactly here. 0 = never shipped to (or seeded out-of-band).
    high_water: u64,
    deltas_applied: u64,
    snapshots_applied: u64,
}

impl StreamState {
    fn fresh(config: &ServeConfig) -> Result<Self, CoreError> {
        Ok(Self {
            f2: config.fresh_f2_sketch()?,
            f0: config.fresh_f0()?,
            rarity: config.fresh_rarity()?,
            hh: config.fresh_hh()?,
            high_water: 0,
            deltas_applied: 0,
            snapshots_applied: 0,
        })
    }
}

/// The four structures decoded out of one replication container.
struct Restored {
    f2: CorrelatedSketch<F2Aggregate>,
    f0: CorrelatedF0,
    rarity: CorrelatedRarity,
    hh: CorrelatedHeavyHitters,
}

/// Decode a container's sections into fresh structures; every section is
/// required (the producer always ships all four).
fn restore_sections(config: &ServeConfig, sections: &[(u8, &[u8])]) -> Result<Restored, String> {
    let section = |tag: u8, name: &str| -> Result<&[u8], String> {
        sections
            .iter()
            .find(|&&(t, _)| t == tag)
            .map(|&(_, bytes)| bytes)
            .ok_or_else(|| format!("replication container is missing its {name} section"))
    };
    Ok(Restored {
        f2: CorrelatedSketch::restore_from(
            config.f2_aggregate(),
            section(REPL_SECTION_F2, "F2")?,
        )
        .map_err(|e| format!("F2 section: {e}"))?,
        f0: CorrelatedF0::restore_from(section(REPL_SECTION_F0, "F0")?)
            .map_err(|e| format!("F0 section: {e}"))?,
        rarity: CorrelatedRarity::restore_from(section(REPL_SECTION_RARITY, "rarity")?)
            .map_err(|e| format!("rarity section: {e}"))?,
        hh: CorrelatedHeavyHitters::restore_from(section(REPL_SECTION_HH, "HH")?)
            .map_err(|e| format!("heavy-hitters section: {e}"))?,
    })
}

/// The cross-stream union composite, rebuilt lazily: `epoch` names the
/// aggregator state it was built from, so queries between replication
/// events reuse it without any merging.
struct UnionCache {
    epoch: u64,
    f2: CorrelatedSketch<F2Aggregate>,
    f0: CorrelatedF0,
    rarity: CorrelatedRarity,
    hh: CorrelatedHeavyHitters,
}

/// Registered streams plus the union cache, under one lock (replication
/// applies and queries serialize — the aggregator's work per event is a
/// merge or a cached read, not per-tuple processing).
struct AggState {
    streams: BTreeMap<String, StreamState>,
    /// Bumped on every applied container; invalidates `union`.
    epoch: u64,
    union: Option<UnionCache>,
}

/// The aggregator's service core: answers the query surface of an ingest
/// node over the **union** of its registered streams, plus the
/// replication ops and the multi-stream `set_f0` / `streams` ops. Plugged
/// into the shared transport stack via [`ServiceCore`].
pub(crate) struct AggCore {
    config: ServeConfig,
    fingerprint: u64,
    state: Mutex<AggState>,
    requests: AtomicU64,
    deltas_applied: AtomicU64,
    snapshots_applied: AtomicU64,
    repl_rejected: AtomicU64,
}

impl AggCore {
    fn new(config: ServeConfig) -> Result<Self, ServeError> {
        // Fail at start, not at the first handshake, if the parameters
        // cannot build the sketch family.
        let _ = StreamState::fresh(&config)?;
        let fingerprint = config.replication_fingerprint();
        Ok(Self {
            config,
            fingerprint,
            state: Mutex::new(AggState {
                streams: BTreeMap::new(),
                epoch: 0,
                union: None,
            }),
            requests: AtomicU64::new(0),
            deltas_applied: AtomicU64::new(0),
            snapshots_applied: AtomicU64::new(0),
            repl_rejected: AtomicU64::new(0),
        })
    }

    /// Run `f` against the up-to-date union composite, rebuilding it first
    /// if any stream changed since it was cached.
    fn with_union<T>(
        &self,
        f: impl FnOnce(&UnionCache) -> Result<T, CoreError>,
    ) -> Result<T, CoreError> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let AggState { streams, epoch, union } = &mut *state;
        let stale = union.as_ref().map(|u| u.epoch) != Some(*epoch);
        if stale {
            let mut fresh = UnionCache {
                epoch: *epoch,
                f2: self.config.fresh_f2_sketch()?,
                f0: self.config.fresh_f0()?,
                rarity: self.config.fresh_rarity()?,
                hh: self.config.fresh_hh()?,
            };
            for stream in streams.values() {
                fresh.f2.merge_from(&stream.f2)?;
                fresh.f0.merge_from(&stream.f0)?;
                fresh.rarity.merge_from(&stream.rarity)?;
                fresh.hh.merge_from(&stream.hh)?;
            }
            *union = Some(fresh);
        }
        f(union.as_ref().expect("just built"))
    }

    /// `set_f0`: inclusion–exclusion over two streams' distinct samplers
    /// (see the module docs for the accuracy caveat on intersect/diff).
    fn set_f0(&self, a: &str, b: &str, op: SetOp, c: u64) -> Reply {
        let cc = c.min(self.config.y_max);
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let unknown = |name: &str| {
            Reply::request_error(format!(
                "unknown stream {name:?}: no replica has registered it (see the streams op)"
            ))
        };
        let Some(sa) = state.streams.get(a) else {
            return unknown(a);
        };
        let Some(sb) = state.streams.get(b) else {
            return unknown(b);
        };
        let estimates = (|| -> Result<(f64, f64, f64), CoreError> {
            let f_a = sa.f0.query(cc)?;
            let f_b = sb.f0.query(cc)?;
            let mut merged = self.config.fresh_f0()?;
            merged.merge_from(&sa.f0)?;
            merged.merge_from(&sb.f0)?;
            Ok((f_a, f_b, merged.query(cc)?))
        })();
        match estimates {
            Ok((f_a, f_b, f_union)) => {
                // Clamp the derived quantities at 0: estimation noise can
                // push inclusion–exclusion slightly negative.
                let intersect = (f_a + f_b - f_union).max(0.0);
                let value = match op {
                    SetOp::Union => f_union,
                    SetOp::Intersect => intersect,
                    SetOp::Diff => (f_a - intersect).max(0.0),
                };
                Reply::Ok(vec![
                    ("value", Value::F64(value)),
                    ("f_a", Value::F64(f_a)),
                    ("f_b", Value::F64(f_b)),
                    ("f_union", Value::F64(f_union)),
                ])
            }
            Err(e) => Reply::sketch_error(e.to_string()),
        }
    }

    /// The replication handshake: register (or re-find) the stream and tell
    /// the replica where the chain stands.
    fn repl_hello(&self, stream: &str, fingerprint: u64) -> Reply {
        if !valid_stream_name(stream) {
            return Reply::request_error(format!(
                "replication stream name {stream:?} must be 1-64 bytes of [A-Za-z0-9_.-]"
            ));
        }
        if fingerprint != self.fingerprint {
            self.repl_rejected.fetch_add(1, Ordering::Relaxed);
            return Reply::request_error(format!(
                "configuration fingerprint mismatch (replica {fingerprint:#018x}, aggregator \
                 {:#018x}): sketches built from different parameters or seeds cannot merge",
                self.fingerprint
            ));
        }
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !state.streams.contains_key(stream) {
            match StreamState::fresh(&self.config) {
                Ok(fresh) => {
                    state.streams.insert(stream.to_string(), fresh);
                }
                Err(e) => return Reply::server_error(e.to_string()),
            }
        }
        let high_water = state.streams[stream].high_water;
        Reply::Ok(vec![("high_water", Value::U64(high_water))])
    }

    /// Apply one sealed container to `stream`. `snapshot_op` marks frames
    /// that arrived via `repl_snapshot`, which must be full replacements.
    fn repl_apply(&self, stream: &str, frame: &[u8], snapshot_op: bool) -> Reply {
        let reject = |counter: &AtomicU64, message: String| {
            counter.fetch_add(1, Ordering::Relaxed);
            Reply::request_error(message)
        };
        let (header, sections) = match open_delta(frame) {
            Ok(opened) => opened,
            Err(e) => {
                return reject(
                    &self.repl_rejected,
                    format!("unreadable replication container: {e}"),
                )
            }
        };
        if header.fingerprint != self.fingerprint {
            return reject(
                &self.repl_rejected,
                format!(
                    "configuration fingerprint mismatch (container {:#018x}, aggregator \
                     {:#018x})",
                    header.fingerprint, self.fingerprint
                ),
            );
        }
        if snapshot_op && header.g_from != 0 {
            return reject(
                &self.repl_rejected,
                format!(
                    "repl_snapshot requires a full container (g_from = 0), got g_from = {}",
                    header.g_from
                ),
            );
        }
        // Restore every structure before touching the stream state, so a
        // corrupt section rejects the container atomically.
        let Restored { f2, f0, rarity, hh } = match restore_sections(&self.config, &sections) {
            Ok(restored) => restored,
            Err(detail) => return reject(&self.repl_rejected, detail),
        };
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(stream_state) = state.streams.get_mut(stream) else {
            return reject(
                &self.repl_rejected,
                format!("unknown stream {stream:?}: send repl_hello first"),
            );
        };
        if header.g_from == 0 {
            // Full replacement: the container *is* the stream's state.
            stream_state.f2 = f2;
            stream_state.f0 = f0;
            stream_state.rarity = rarity;
            stream_state.hh = hh;
            stream_state.snapshots_applied += 1;
            self.snapshots_applied.fetch_add(1, Ordering::Relaxed);
        } else {
            if header.g_from != stream_state.high_water {
                let high_water = stream_state.high_water;
                drop(state);
                return reject(
                    &self.repl_rejected,
                    format!(
                        "delta chains from generation {} but stream {stream:?} stands at {} — \
                         resync with a full snapshot",
                        header.g_from, high_water
                    ),
                );
            }
            let merged = stream_state
                .f2
                .merge_from(&f2)
                .and_then(|()| stream_state.f0.merge_from(&f0))
                .and_then(|()| stream_state.rarity.merge_from(&rarity))
                .and_then(|()| stream_state.hh.merge_from(&hh));
            if let Err(e) = merged {
                // A half-applied merge would corrupt the stream; force the
                // replica to replace it wholesale.
                stream_state.high_water = 0;
                state.epoch += 1;
                state.union = None;
                return Reply::sketch_error(format!(
                    "delta merge failed ({e}); stream {stream:?} reset, resync required"
                ));
            }
            stream_state.deltas_applied += 1;
            self.deltas_applied.fetch_add(1, Ordering::Relaxed);
        }
        stream_state.high_water = header.g_to;
        state.epoch += 1;
        state.union = None;
        Reply::Ok(vec![("high_water", Value::U64(header.g_to))])
    }

    /// Warm-standby seeding: load `stream` from an upstream's durable
    /// directory (newest readable snapshot + journal replay). High water
    /// stays 0, so a returning upstream full-resyncs over this state.
    fn catch_up_from_dir(&self, stream: &str, dir: &Path) -> Result<(), ServeError> {
        if !valid_stream_name(stream) {
            return Err(ServeError::Invalid(format!(
                "replication stream name {stream:?} must be 1-64 bytes of [A-Za-z0-9_.-]"
            )));
        }
        let storage = crate::journal::disk_storage();
        let recovered = recover(&storage, dir)?;
        let mut seeded = match &recovered.bundle {
            Some(bundle) => Self::stream_from_bundle(&self.config, bundle)?,
            None => StreamState::fresh(&self.config)?,
        };
        for record in &recovered.replay {
            for &(x, y) in &record.tuples {
                seeded
                    .f2
                    .insert(x, y)
                    .and_then(|()| seeded.f0.insert(x, y))
                    .and_then(|()| seeded.rarity.insert(x, y))
                    .and_then(|()| seeded.hh.insert(x, y))?;
            }
        }
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.streams.contains_key(stream) {
            return Err(ServeError::Invalid(format!(
                "stream {stream:?} is seeded twice"
            )));
        }
        state.streams.insert(stream.to_string(), seeded);
        state.epoch += 1;
        state.union = None;
        Ok(())
    }

    /// Rebuild a stream's sketch set from an ingest node's snapshot bundle
    /// (the windowed and sequence sections do not replicate).
    fn stream_from_bundle(config: &ServeConfig, bundle: &Bundle) -> Result<StreamState, ServeError> {
        let state = StreamState {
            f2: CorrelatedSketch::restore_from(config.f2_aggregate(), &bundle.f2)?,
            f0: CorrelatedF0::restore_from(&bundle.f0)?,
            rarity: CorrelatedRarity::restore_from(&bundle.rarity)?,
            hh: CorrelatedHeavyHitters::restore_from(&bundle.hh)?,
            high_water: 0,
            deltas_applied: 0,
            snapshots_applied: 0,
        };
        // The fingerprint covers every mergeable parameter; a bundle from a
        // differently-configured node must not masquerade as this stream.
        let fresh = config.fresh_f2_sketch()?;
        if state.f2.config() != fresh.config() {
            return Err(ServeError::Invalid(
                "durable directory was written by a node with different F2 parameters".into(),
            ));
        }
        Ok(state)
    }

    fn handle(&self, request: Request) -> (Reply, bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let fail = |e: CoreError| (Reply::sketch_error(e.to_string()), false);
        let not_here = |what: &str| {
            (
                Reply::request_error(format!(
                    "{what} is an ingest-node op; an aggregator only merges replicated streams"
                )),
                false,
            )
        };
        match request {
            Request::Ping => (Reply::ok(), false),
            Request::Config => {
                let c = &self.config;
                (
                    Reply::Ok(vec![
                        ("role", Value::Str("aggregator".to_string())),
                        ("fingerprint", Value::U64(self.fingerprint)),
                        ("epsilon", Value::F64(c.epsilon)),
                        ("delta", Value::F64(c.delta)),
                        ("y_max", Value::U64(c.y_max)),
                        ("max_stream_len", Value::U64(c.max_stream_len)),
                        ("seed", Value::U64(c.seed)),
                        ("phi", Value::F64(c.phi)),
                        ("x_domain_log2", Value::U64(u64::from(c.x_domain_log2))),
                        ("max_connections", Value::U64(c.max_connections as u64)),
                    ]),
                    false,
                )
            }
            // Reads are always against fully-applied state; flush is the
            // no-op barrier it promises to be.
            Request::Flush => (Reply::ok(), false),
            Request::QueryF2 { c } => match self.with_union(|u| u.f2.query(c)) {
                Ok(value) => (Reply::Ok(vec![("value", Value::F64(value))]), false),
                Err(e) => fail(e),
            },
            Request::QueryF0 { c } => {
                match self.with_union(|u| u.f0.query(c.min(self.config.y_max))) {
                    Ok(value) => (Reply::Ok(vec![("value", Value::F64(value))]), false),
                    Err(e) => fail(e),
                }
            }
            Request::QueryRarity { c } => {
                match self.with_union(|u| u.rarity.query(c.min(self.config.y_max))) {
                    Ok(value) => (Reply::Ok(vec![("value", Value::F64(value))]), false),
                    Err(e) => fail(e),
                }
            }
            Request::QueryHeavyHitters { c, phi } => {
                match self.with_union(|u| u.hh.query_heavy_hitters(c, phi)) {
                    Ok(hitters) => {
                        let items: Vec<u64> = hitters.iter().map(|h| h.item).collect();
                        let freqs: Vec<f64> = hitters.iter().map(|h| h.frequency).collect();
                        let shares: Vec<f64> = hitters.iter().map(|h| h.share).collect();
                        (
                            Reply::Ok(vec![
                                ("items", Value::U64Array(items)),
                                ("frequencies", Value::F64Array(freqs)),
                                ("shares", Value::F64Array(shares)),
                            ]),
                            false,
                        )
                    }
                    Err(e) => fail(e),
                }
            }
            Request::SetF0 { a, b, op, c } => (self.set_f0(&a, &b, op, c), false),
            Request::Streams => {
                let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                let names: Vec<&str> = state.streams.keys().map(String::as_str).collect();
                (
                    Reply::Ok(vec![
                        ("streams", Value::Str(names.join(","))),
                        ("count", Value::U64(names.len() as u64)),
                    ]),
                    false,
                )
            }
            Request::ReplHello { stream, fingerprint, g_to: _ } => {
                (self.repl_hello(&stream, fingerprint), false)
            }
            Request::ReplDelta { stream, frame } => (self.repl_apply(&stream, &frame, false), false),
            Request::ReplSnapshot { stream, frame } => {
                (self.repl_apply(&stream, &frame, true), false)
            }
            Request::Stats => {
                let (stream_count, epoch, high_water_sum) = {
                    let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                    let sum = state.streams.values().map(|s| s.high_water).sum::<u64>();
                    (state.streams.len() as u64, state.epoch, sum)
                };
                (
                    Reply::Ok(vec![
                        ("requests", Value::U64(self.requests.load(Ordering::Relaxed))),
                        ("streams", Value::U64(stream_count)),
                        ("epoch", Value::U64(epoch)),
                        ("high_water_sum", Value::U64(high_water_sum)),
                        (
                            "deltas_applied",
                            Value::U64(self.deltas_applied.load(Ordering::Relaxed)),
                        ),
                        (
                            "snapshots_applied",
                            Value::U64(self.snapshots_applied.load(Ordering::Relaxed)),
                        ),
                        (
                            "repl_rejected",
                            Value::U64(self.repl_rejected.load(Ordering::Relaxed)),
                        ),
                    ]),
                    false,
                )
            }
            Request::Auth { .. } => (
                Reply::request_error(
                    "auth is handled by the connection transport before dispatch",
                ),
                false,
            ),
            Request::Ingest { .. } => not_here("ingest"),
            Request::WindowF2 { .. } | Request::WindowF0 { .. } => {
                not_here("a windowed query (windows do not replicate)")
            }
            Request::Snapshot { .. } => not_here("snapshot"),
            Request::Shutdown => (Reply::ok(), true),
        }
    }
}

impl ServiceCore for AggCore {
    fn auth_token(&self) -> Option<&str> {
        self.config.auth_token.as_deref()
    }

    fn note_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    fn handle(&self, request: Request) -> (Reply, bool) {
        AggCore::handle(self, request)
    }

    fn ingest_binary(&self, _tuples: &[(u64, u64)], _ts: &[u64], _seq: Option<(u64, u64)>) -> Reply {
        Reply::request_error(
            "an aggregator does not accept ingest; send tuples to an ingest node and let \
             replication fan them in",
        )
    }
}

/// Start an aggregator node on `bind`, speaking both wire protocols over
/// the same transport stack as an ingest server. `config` must match the
/// upstream ingest nodes' configuration (the handshake enforces this via
/// the [`ServeConfig::replication_fingerprint`] check). The
/// `durability` / `replicate` fields are ignored — an aggregator neither
/// journals nor replicates onward.
pub fn start_aggregator(config: ServeConfig, bind: &str) -> Result<RunningServer, ServeError> {
    start_aggregator_seeded(config, bind, &[])
}

/// [`start_aggregator`], pre-seeding streams from upstream durable
/// directories before the listener opens (warm standby — see the module
/// docs). Each `(stream, dir)` pair runs the ingest node's own recovery
/// walk: newest readable snapshot, then journal replay.
pub fn start_aggregator_seeded(
    config: ServeConfig,
    bind: &str,
    seeds: &[(&str, &Path)],
) -> Result<RunningServer, ServeError> {
    let max_connections = config.max_connections;
    let core = Arc::new(AggCore::new(config)?);
    for &(stream, dir) in seeds {
        core.catch_up_from_dir(stream, dir)?;
    }
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let acceptor = spawn_acceptor(core, listener, Arc::clone(&shutdown), max_connections)?;
    Ok(RunningServer {
        addr,
        shutdown,
        acceptor: Some(acceptor),
        snapshotter: None,
        replicator: None,
    })
}

/// Progress shared between an ingest node's replication thread and its
/// observers ([`RunningServer::replication_sync`], shutdown).
#[derive(Default)]
struct ReplProgress {
    /// Highest generation the aggregator has acknowledged.
    acked_gen: u64,
    /// Containers acknowledged (deltas and snapshots).
    shipped: u64,
    /// Full resyncs performed (chain breaks, reconnects, overflow).
    full_resyncs: u64,
    /// Barrier tickets: a sync request bumps `sync_requests`; the loop
    /// publishes `sync_completions` after a pass that covers the ticket.
    sync_requests: u64,
    sync_completions: u64,
    /// The failure that ended the most recent pass, cleared on success.
    last_error: Option<String>,
    stop: bool,
}

struct ReplShared {
    progress: Mutex<ReplProgress>,
    cvar: Condvar,
}

/// Handle to a running replication thread (one per
/// [`ServeConfig::replicate`] server).
pub struct ReplicatorHandle {
    shared: Arc<ReplShared>,
    thread: Option<thread::JoinHandle<()>>,
}

impl ReplicatorHandle {
    /// Replication barrier: wake the replication thread, wait until a pass
    /// requested after this call completes, and return the acknowledged
    /// generation. A pass that could not reach the aggregator returns its
    /// error (the thread keeps retrying in the background regardless).
    pub(crate) fn sync(&self, timeout: Duration) -> Result<u64, String> {
        let mut progress = self
            .shared
            .progress
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        progress.sync_requests += 1;
        let ticket = progress.sync_requests;
        self.shared.cvar.notify_all();
        let deadline = Instant::now() + timeout;
        while progress.sync_completions < ticket {
            let now = Instant::now();
            if now >= deadline {
                return Err(format!(
                    "replication sync timed out after {timeout:?} (last error: {:?})",
                    progress.last_error
                ));
            }
            let (guard, _) = self
                .shared
                .cvar
                .wait_timeout(progress, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            progress = guard;
        }
        match &progress.last_error {
            Some(e) => Err(e.clone()),
            None => Ok(progress.acked_gen),
        }
    }

    /// Stop the thread and wait for it to exit.
    pub(crate) fn stop_and_join(&mut self) {
        {
            let mut progress = self
                .shared
                .progress
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            progress.stop = true;
            self.shared.cvar.notify_all();
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// What woke the replication loop.
enum Wake {
    /// The shipping interval elapsed.
    Tick,
    /// A [`ReplicatorHandle::sync`] barrier wants a pass; carries its
    /// ticket.
    Sync(u64),
    Stop,
}

/// Spawn the per-upstream replication thread: every `interval_ms` (or on a
/// sync barrier) it cuts the accumulated delta and ships it, falling back
/// to a full resync whenever the chain breaks (see the module docs).
pub(crate) fn spawn_replicator(
    core: Arc<ServerCore>,
    cfg: ReplicateConfig,
    shutdown: Arc<AtomicBool>,
) -> ReplicatorHandle {
    let shared = Arc::new(ReplShared {
        progress: Mutex::new(ReplProgress::default()),
        cvar: Condvar::new(),
    });
    let thread = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("cora-serve-repl".into())
            .spawn(move || Replicator::new(core, cfg, shutdown, shared).run())
            .ok()
    };
    ReplicatorHandle { shared, thread }
}

/// The replica-side state machine living on the replication thread.
struct Replicator {
    core: Arc<ServerCore>,
    cfg: ReplicateConfig,
    shutdown: Arc<AtomicBool>,
    shared: Arc<ReplShared>,
    fingerprint: u64,
    session: Option<ServeClient>,
    /// Cut-but-unacknowledged containers, oldest first. Bounded by
    /// `cfg.max_pending`: overflow collapses into one full resync.
    pending: VecDeque<ReplCut>,
    /// The next pass must ship a full replacement (initially true: the
    /// base state — empty or restored — predates delta tracking).
    need_full: bool,
    /// Consecutive failed passes, for backoff.
    failures: u32,
}

impl Replicator {
    fn new(
        core: Arc<ServerCore>,
        cfg: ReplicateConfig,
        shutdown: Arc<AtomicBool>,
        shared: Arc<ReplShared>,
    ) -> Self {
        let fingerprint = core.config().replication_fingerprint();
        Self {
            core,
            cfg,
            shutdown,
            shared,
            fingerprint,
            session: None,
            pending: VecDeque::new(),
            need_full: true,
            failures: 0,
        }
    }

    fn run(mut self) {
        loop {
            let wait = self.wait_duration();
            let wake = self.wait(wait);
            if matches!(wake, Wake::Stop) || self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let ticket = match wake {
                Wake::Sync(ticket) => Some(ticket),
                _ => None,
            };
            let result = self.pass();
            let mut progress = self
                .shared
                .progress
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match result {
                Ok(()) => {
                    self.failures = 0;
                    progress.last_error = None;
                }
                Err(e) => {
                    self.failures = self.failures.saturating_add(1);
                    progress.last_error = Some(e);
                }
            }
            if let Some(ticket) = ticket {
                progress.sync_completions = progress.sync_completions.max(ticket);
            }
            self.shared.cvar.notify_all();
        }
    }

    /// Interval plus exponential backoff after failures (capped at 2 s).
    fn wait_duration(&self) -> Duration {
        let interval = Duration::from_millis(self.cfg.interval_ms.max(1));
        if self.failures == 0 {
            return interval;
        }
        let backoff = Duration::from_millis(20)
            .saturating_mul(1u32 << self.failures.min(7))
            .min(Duration::from_secs(2));
        interval.saturating_add(backoff)
    }

    /// Sleep until the next tick, a sync barrier, or stop.
    fn wait(&self, wait: Duration) -> Wake {
        let mut progress = self
            .shared
            .progress
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let deadline = Instant::now() + wait;
        loop {
            if progress.stop {
                return Wake::Stop;
            }
            if progress.sync_requests > progress.sync_completions {
                return Wake::Sync(progress.sync_requests);
            }
            let now = Instant::now();
            if now >= deadline {
                return Wake::Tick;
            }
            let (guard, _) = self
                .shared
                .cvar
                .wait_timeout(progress, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            progress = guard;
        }
    }

    /// One replication pass: cut, then ship everything pending. Success
    /// means the aggregator acknowledged every cut taken so far.
    fn pass(&mut self) -> Result<(), String> {
        // A second attempt covers exactly one in-session chain rejection
        // (the aggregator restarted between passes): the retry ships the
        // full resync the rejection asked for.
        let mut chain_detail = String::new();
        for _ in 0..2 {
            self.cut()?;
            if self.pending.is_empty() {
                return Ok(());
            }
            match self.ship() {
                Ok(()) => return Ok(()),
                Err(ShipError::Chain(detail)) => chain_detail = detail,
                Err(ShipError::Conn(e)) => return Err(e),
            }
        }
        Err(format!(
            "replication chain rejected twice in one pass: {chain_detail}"
        ))
    }

    /// Take the due cut (incremental, or full when `need_full`), enforcing
    /// the backlog bound.
    fn cut(&mut self) -> Result<(), String> {
        if self.pending.len() >= self.cfg.max_pending.max(1) {
            self.need_full = true;
        }
        if self.need_full {
            // One full replacement subsumes every queued container.
            self.pending.clear();
            let cut = self
                .core
                .repl_cut(true)
                .map_err(|e| format!("full replication cut failed: {e}"))?
                .expect("a full cut is never skipped as idle");
            self.pending.push_back(cut);
            self.need_full = false;
            let mut progress = self
                .shared
                .progress
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            progress.full_resyncs += 1;
        } else if let Some(cut) = self
            .core
            .repl_cut(false)
            .map_err(|e| format!("replication cut failed: {e}"))?
        {
            self.pending.push_back(cut);
        }
        Ok(())
    }

    /// Ship every pending container over the (re)established session.
    fn ship(&mut self) -> Result<(), ShipError> {
        let mut session = match self.session.take() {
            Some(session) => session,
            None => self.establish()?,
        };
        while let Some(front) = self.pending.front() {
            let result = if front.g_from == 0 {
                session.repl_snapshot(&self.cfg.stream, front.frame.clone())
            } else {
                session.repl_delta(&self.cfg.stream, front.frame.clone())
            };
            match result {
                Ok(_high_water) => {
                    let acked = self.pending.pop_front().expect("front exists");
                    let mut progress = self
                        .shared
                        .progress
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    progress.acked_gen = acked.g_to;
                    progress.shipped += 1;
                }
                // A `request` rejection means the chain broke (the
                // aggregator restarted or another replica reset the
                // stream); the connection itself is fine, so keep it and
                // resync in-session. Anything else kills the session.
                Err(ClientError::Server(ref server)) if server.kind == "request" => {
                    self.need_full = true;
                    let detail = format!("aggregator rejected the container: {}", server.message);
                    self.session = Some(session);
                    return Err(ShipError::Chain(detail));
                }
                Err(e) => {
                    return Err(ShipError::Conn(format!(
                        "shipping to {}: {e}",
                        self.cfg.target
                    )))
                }
            }
        }
        self.session = Some(session);
        Ok(())
    }

    /// Connect, authenticate, and handshake. On a chain mismatch (the
    /// aggregator's high water is not where our pending queue resumes) the
    /// next cut is forced full.
    fn establish(&mut self) -> Result<ServeClient, ShipError> {
        let conn_err = |e: String| ShipError::Conn(e);
        let mut session = ServeClient::connect_binary_timeout(
            &self.cfg.target,
            Duration::from_secs(5),
        )
        .map_err(|e| conn_err(format!("connect to {}: {e}", self.cfg.target)))?;
        session
            .set_timeouts(Some(Duration::from_secs(10)), Some(Duration::from_secs(10)))
            .map_err(|e| conn_err(format!("socket timeouts: {e}")))?;
        if let Some(token) = &self.cfg.auth_token {
            session
                .auth(token)
                .map_err(|e| conn_err(format!("authentication with the aggregator: {e}")))?;
        }
        let chain_gen = self.pending.back().map_or(0, |cut| cut.g_to);
        let high_water = session
            .repl_hello(&self.cfg.stream, self.fingerprint, chain_gen)
            .map_err(|e| conn_err(format!("replication handshake: {e}")))?;
        let resumes = match self.pending.front() {
            // A full container applies anywhere; a delta must chain.
            Some(front) => front.g_from == 0 || front.g_from == high_water,
            // Idle queue: only valid if the aggregator already holds our
            // whole chain (a fresh aggregator reports 0 and needs the base).
            None => high_water == chain_gen && high_water != 0,
        };
        if !resumes {
            self.need_full = true;
            self.session = Some(session);
            return Err(ShipError::Chain(format!(
                "aggregator stands at generation {high_water}, local chain at {chain_gen}"
            )));
        }
        Ok(session)
    }

}

/// Why a shipping attempt stopped.
enum ShipError {
    /// The aggregator rejected the chain; retry with a full resync over
    /// the same session.
    Chain(String),
    /// The session is unusable; reconnect with backoff.
    Conn(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_names_are_validated() {
        assert!(valid_stream_name("node-a"));
        assert!(valid_stream_name("A_b.c-9"));
        assert!(!valid_stream_name(""));
        assert!(!valid_stream_name("has space"));
        assert!(!valid_stream_name("ünïcode"));
        assert!(!valid_stream_name(&"x".repeat(65)));
        assert!(valid_stream_name(&"x".repeat(64)));
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            epsilon: 0.25,
            delta: 0.1,
            y_max: 4095,
            max_stream_len: 100_000,
            seed: 7,
            shards: 2,
            merge_every: 1,
            phi: 0.05,
            x_domain_log2: 16,
            pane_ticks: 256,
            pane_k: 4,
            pane_retention: None,
            max_connections: 64,
            durability: None,
            auth_token: None,
            replicate: None,
        }
    }

    #[test]
    fn hello_registers_and_rejects_mismatched_fingerprints() {
        let core = AggCore::new(test_config()).unwrap();
        let fp = test_config().replication_fingerprint();
        let reply = core.repl_hello("node-a", fp);
        assert_eq!(reply, Reply::Ok(vec![("high_water", Value::U64(0))]));
        // Same stream again: still registered, same high water.
        let reply = core.repl_hello("node-a", fp);
        assert_eq!(reply, Reply::Ok(vec![("high_water", Value::U64(0))]));
        // Wrong fingerprint: refused and counted.
        let reply = core.repl_hello("node-a", fp ^ 1);
        assert!(matches!(reply, Reply::Error(_)), "{reply:?}");
        assert_eq!(core.repl_rejected.load(Ordering::Relaxed), 1);
        // Bad names never register.
        let reply = core.repl_hello("no spaces", fp);
        assert!(matches!(reply, Reply::Error(_)), "{reply:?}");
    }

    #[test]
    fn apply_rejects_garbage_unknown_streams_and_broken_chains() {
        let core = AggCore::new(test_config()).unwrap();
        let fp = test_config().replication_fingerprint();
        // Garbage container.
        let reply = core.repl_apply("node-a", b"garbage", false);
        assert!(matches!(reply, Reply::Error(_)), "{reply:?}");
        // Unknown stream with a structurally valid (but empty) container.
        let header = cora_core::DeltaHeader { g_from: 0, g_to: 1, fingerprint: fp };
        let mut frame = Vec::new();
        cora_core::snapshot::seal_delta_into(&header, &[], &mut frame);
        let reply = core.repl_apply("node-a", &frame, true);
        assert!(matches!(reply, Reply::Error(_)), "{reply:?}");
        // Registered stream, but the container is missing its sections.
        core.repl_hello("node-a", fp);
        let reply = core.repl_apply("node-a", &frame, true);
        assert!(matches!(reply, Reply::Error(_)), "{reply:?}");
        // A snapshot op must carry g_from = 0.
        let header = cora_core::DeltaHeader { g_from: 3, g_to: 4, fingerprint: fp };
        let mut frame = Vec::new();
        cora_core::snapshot::seal_delta_into(&header, &[], &mut frame);
        let reply = core.repl_apply("node-a", &frame, true);
        assert!(matches!(reply, Reply::Error(_)), "{reply:?}");
        assert!(core.repl_rejected.load(Ordering::Relaxed) >= 4);
    }

    #[test]
    fn set_f0_requires_known_streams() {
        let core = AggCore::new(test_config()).unwrap();
        let reply = core.set_f0("a", "b", SetOp::Union, 100);
        assert!(matches!(reply, Reply::Error(_)), "{reply:?}");
    }
}
