//! Standalone aggregator node: merges replicated streams from
//! `cora_serve_node --replicate-to` upstreams and answers queries over
//! their union, plus `set_f0` set-expression queries across streams.
//!
//! ```text
//! cora_serve_agg [--bind 127.0.0.1:0] [--auth-token TOKEN]
//!     [--seed NAME=DIR]...
//! ```
//!
//! Prints `LISTENING <addr>` on stdout once the socket is bound, then
//! parks until the `shutdown` op arrives. The sketch configuration is the
//! same fixed one `cora_serve_node` uses — the replication handshake
//! refuses upstreams built from different parameters, so the two binaries
//! must stay in lockstep.
//!
//! Each `--seed NAME=DIR` pre-loads stream `NAME` from an upstream's
//! durable directory (newest snapshot plus journal replay) before the
//! listener opens — warm standby for a dead upstream.

use cora_serve::cluster::start_aggregator_seeded;
use cora_serve::server::ServeConfig;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage(detail: &str) -> ExitCode {
    eprintln!("error: {detail}");
    eprintln!("usage: cora_serve_agg [--bind ADDR] [--auth-token TOKEN] [--seed NAME=DIR]...");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut bind = "127.0.0.1:0".to_string();
    let mut auth_token: Option<String> = None;
    let mut seeds: Vec<(String, PathBuf)> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--bind" => match value("--bind") {
                Ok(v) => bind = v,
                Err(e) => return usage(&e),
            },
            "--auth-token" => match value("--auth-token") {
                Ok(v) => auth_token = Some(v),
                Err(e) => return usage(&e),
            },
            "--seed" => match value("--seed") {
                Ok(v) => match v.split_once('=') {
                    Some((name, dir)) if !name.is_empty() && !dir.is_empty() => {
                        seeds.push((name.to_string(), PathBuf::from(dir)));
                    }
                    _ => return usage("--seed takes NAME=DIR"),
                },
                Err(e) => return usage(&e),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    // The same fixed parameters as cora_serve_node: the replication
    // fingerprint covers them, so a mismatch here would refuse every
    // upstream at the handshake.
    let config = ServeConfig {
        epsilon: 0.25,
        delta: 0.1,
        y_max: 4095,
        max_stream_len: 1_000_000,
        seed: 7,
        shards: 2,
        merge_every: 1,
        x_domain_log2: 16,
        pane_ticks: 256,
        auth_token,
        ..ServeConfig::default()
    };

    let seed_refs: Vec<(&str, &std::path::Path)> = seeds
        .iter()
        .map(|(name, dir)| (name.as_str(), dir.as_path()))
        .collect();
    let server = match start_aggregator_seeded(config, &bind, &seed_refs) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: could not start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("LISTENING {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.wait();
    server.shutdown();
    ExitCode::SUCCESS
}
