//! Standalone durable serve node — the process the crash-recovery tests
//! `SIGKILL` and restart.
//!
//! ```text
//! cora_serve_node --dir /var/lib/cora [--bind 127.0.0.1:0]
//!     [--snap-tuples N] [--snap-ms MS] [--no-fsync]
//! ```
//!
//! Prints `LISTENING <addr>` on stdout once the socket is bound (the test
//! harness parses this to learn the OS-chosen port), then parks until the
//! `shutdown` op arrives. The serve configuration is fixed — both sides of
//! a kill/restart cycle must build identical sketches, and a config plus a
//! durable directory fully determines a server.

use cora_serve::server::{start, DurabilityConfig, ServeConfig};
use std::io::Write;
use std::process::ExitCode;

fn usage(detail: &str) -> ExitCode {
    eprintln!("error: {detail}");
    eprintln!(
        "usage: cora_serve_node --dir DIR [--bind ADDR] [--snap-tuples N] \
         [--snap-ms MS] [--no-fsync]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut bind = "127.0.0.1:0".to_string();
    let mut dir: Option<String> = None;
    let mut snap_tuples: u64 = 200_000;
    let mut snap_ms: u64 = 0;
    let mut fsync = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--bind" => match value("--bind") {
                Ok(v) => bind = v,
                Err(e) => return usage(&e),
            },
            "--dir" => match value("--dir") {
                Ok(v) => dir = Some(v),
                Err(e) => return usage(&e),
            },
            "--snap-tuples" => match value("--snap-tuples").map(|v| v.parse()) {
                Ok(Ok(v)) => snap_tuples = v,
                _ => return usage("--snap-tuples requires an unsigned integer"),
            },
            "--snap-ms" => match value("--snap-ms").map(|v| v.parse()) {
                Ok(Ok(v)) => snap_ms = v,
                _ => return usage("--snap-ms requires an unsigned integer"),
            },
            "--no-fsync" => fsync = false,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(dir) = dir else {
        return usage("--dir is required");
    };

    let config = ServeConfig {
        // Fixed small-but-real sketch parameters: restarts must rebuild the
        // exact same structures the journal and snapshots were taken under.
        epsilon: 0.25,
        delta: 0.1,
        y_max: 4095,
        max_stream_len: 1_000_000,
        seed: 7,
        shards: 2,
        merge_every: 1,
        x_domain_log2: 16,
        pane_ticks: 256,
        durability: Some(DurabilityConfig {
            dir: dir.into(),
            snapshot_every_tuples: snap_tuples,
            snapshot_interval_ms: snap_ms,
            fsync_each_batch: fsync,
        }),
        ..ServeConfig::default()
    };

    let server = match start(config, &bind) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: could not start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("LISTENING {}", server.local_addr());
    // The harness reads the line immediately; without the flush it can sit
    // in the stdout buffer forever (and a SIGKILL would discard it).
    let _ = std::io::stdout().flush();
    server.wait();
    server.shutdown();
    ExitCode::SUCCESS
}
