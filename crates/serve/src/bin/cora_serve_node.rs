//! Standalone durable serve node — the process the crash-recovery tests
//! `SIGKILL` and restart.
//!
//! ```text
//! cora_serve_node --dir /var/lib/cora [--bind 127.0.0.1:0]
//!     [--snap-tuples N] [--snap-ms MS] [--no-fsync]
//!     [--replicate-to ADDR --stream NAME [--repl-interval-ms MS]]
//!     [--auth-token TOKEN]
//! ```
//!
//! Prints `LISTENING <addr>` on stdout once the socket is bound (the test
//! harness parses this to learn the OS-chosen port), then parks until the
//! `shutdown` op arrives. The serve configuration is fixed — both sides of
//! a kill/restart cycle must build identical sketches, and a config plus a
//! durable directory fully determines a server.
//!
//! With `--replicate-to`, the node ships its sketch deltas to an
//! aggregator (`cora_serve_agg`) under the given stream name.
//! `--auth-token` both requires the token from this node's clients and
//! presents it to the aggregator.

use cora_serve::server::{start, DurabilityConfig, ReplicateConfig, ServeConfig};
use std::io::Write;
use std::process::ExitCode;

fn usage(detail: &str) -> ExitCode {
    eprintln!("error: {detail}");
    eprintln!(
        "usage: cora_serve_node --dir DIR [--bind ADDR] [--snap-tuples N] \
         [--snap-ms MS] [--no-fsync] [--replicate-to ADDR --stream NAME \
         [--repl-interval-ms MS]] [--auth-token TOKEN]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut bind = "127.0.0.1:0".to_string();
    let mut dir: Option<String> = None;
    let mut snap_tuples: u64 = 200_000;
    let mut snap_ms: u64 = 0;
    let mut fsync = true;
    let mut replicate_to: Option<String> = None;
    let mut stream: Option<String> = None;
    let mut repl_interval_ms: u64 = 200;
    let mut auth_token: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--bind" => match value("--bind") {
                Ok(v) => bind = v,
                Err(e) => return usage(&e),
            },
            "--dir" => match value("--dir") {
                Ok(v) => dir = Some(v),
                Err(e) => return usage(&e),
            },
            "--snap-tuples" => match value("--snap-tuples").map(|v| v.parse()) {
                Ok(Ok(v)) => snap_tuples = v,
                _ => return usage("--snap-tuples requires an unsigned integer"),
            },
            "--snap-ms" => match value("--snap-ms").map(|v| v.parse()) {
                Ok(Ok(v)) => snap_ms = v,
                _ => return usage("--snap-ms requires an unsigned integer"),
            },
            "--no-fsync" => fsync = false,
            "--replicate-to" => match value("--replicate-to") {
                Ok(v) => replicate_to = Some(v),
                Err(e) => return usage(&e),
            },
            "--stream" => match value("--stream") {
                Ok(v) => stream = Some(v),
                Err(e) => return usage(&e),
            },
            "--repl-interval-ms" => match value("--repl-interval-ms").map(|v| v.parse()) {
                Ok(Ok(v)) => repl_interval_ms = v,
                _ => return usage("--repl-interval-ms requires an unsigned integer"),
            },
            "--auth-token" => match value("--auth-token") {
                Ok(v) => auth_token = Some(v),
                Err(e) => return usage(&e),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(dir) = dir else {
        return usage("--dir is required");
    };
    let replicate = match (replicate_to, stream) {
        (Some(target), Some(stream)) => Some(ReplicateConfig {
            interval_ms: repl_interval_ms,
            auth_token: auth_token.clone(),
            ..ReplicateConfig::new(target, stream)
        }),
        (None, None) => None,
        _ => return usage("--replicate-to and --stream must be given together"),
    };

    let config = ServeConfig {
        // Fixed small-but-real sketch parameters: restarts must rebuild the
        // exact same structures the journal and snapshots were taken under.
        epsilon: 0.25,
        delta: 0.1,
        y_max: 4095,
        max_stream_len: 1_000_000,
        seed: 7,
        shards: 2,
        merge_every: 1,
        x_domain_log2: 16,
        pane_ticks: 256,
        durability: Some(DurabilityConfig {
            dir: dir.into(),
            snapshot_every_tuples: snap_tuples,
            snapshot_interval_ms: snap_ms,
            fsync_each_batch: fsync,
        }),
        auth_token,
        replicate,
        ..ServeConfig::default()
    };

    let server = match start(config, &bind) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: could not start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("LISTENING {}", server.local_addr());
    // The harness reads the line immediately; without the flush it can sit
    // in the stdout buffer forever (and a SIGKILL would discard it).
    let _ = std::io::stdout().flush();
    server.wait();
    server.shutdown();
    ExitCode::SUCCESS
}
