//! The wire protocol of the query service: newline-delimited JSON.
//!
//! Every request and every response is one flat JSON object on one line,
//! encoded and parsed with the hand-rolled helpers in [`cora_stream::json`]
//! (the workspace builds offline; there is no serde). Identifier and y
//! arrays are emitted as JSON integer arrays and parsed losslessly as `u64`
//! — `f64` round-tripping would corrupt identifiers above 2⁵³.
//!
//! ## Requests
//!
//! | op              | fields                  | reply                                   |
//! |-----------------|-------------------------|-----------------------------------------|
//! | `ping`          | —                       | `{"ok":true}`                           |
//! | `config`        | —                       | server parameters                       |
//! | `ingest`        | `xs`, `ys` (u64 arrays), optional `ts`, optional `writer`+`seq` | `{"ok":true,"accepted":n}` |
//! | `flush`         | —                       | read-your-writes barrier                |
//! | `f2`            | `c`                     | `{"ok":true,"value":…}`                 |
//! | `f0`            | `c`                     | `{"ok":true,"value":…}`                 |
//! | `rarity`        | `c`                     | `{"ok":true,"value":…}`                 |
//! | `heavy_hitters` | `c`, `phi`              | `items`/`frequencies`/`shares` arrays   |
//! | `window_f2`     | `window`, `c`           | `value` + `resolved_lo`/`resolved_hi`   |
//! | `window_f0`     | `window`, `c`           | `value` + `resolved_lo`/`resolved_hi`   |
//! | `stats`         | —                       | counters + composite epoch/staleness    |
//! | `snapshot`      | `path`                  | writes a snapshot bundle server-side    |
//! | `shutdown`      | —                       | acknowledges, then stops the listener   |
//! | `auth`          | `token`                 | unlocks a connection when the server has an `auth_token` |
//! | `set_f0`        | `a`, `b`, `set_op`, `c` | distinct-count estimate of `A∪B` / `A∩B` / `A∖B` under `y ≤ c` (aggregator) |
//! | `streams`       | —                       | the registered upstream stream names (aggregator) |
//! | `repl_hello`    | `stream`, `fingerprint`, `g_to` | replication handshake; replies with the aggregator's `high_water` |
//!
//! The replication payload ops `repl_delta` and `repl_snapshot` exist only
//! on the binary protocol — their payloads are sealed binary delta
//! containers that JSON lines cannot carry; sending their op names over
//! JSON answers a structured `request` error naming the binary protocol.
//!
//! The optional `ts` array on `ingest` carries per-tuple timestamps (ticks)
//! for the windowed structures; without it the server assigns each tuple the
//! next value of its monotonic arrival counter. Window queries are answered
//! over the pane-aligned *resolved* span `[resolved_lo, resolved_hi)` (see
//! `cora_stream::windowed`), which the response reports alongside the value.
//!
//! Errors come back as `{"ok":false,"error":"…","kind":"…"}` where `kind`
//! is one of [`ErrorKind`]'s wire names — `"io"` marks a server-side
//! journal/snapshot failure with the underlying `io::Error` detail in the
//! message. A malformed line never kills the connection, it answers with an
//! error object. The optional `writer`+`seq` pair on `ingest` (sent
//! together or not at all) makes the batch idempotent: replaying it after a
//! reconnect answers `duplicate:1` instead of double-counting.

use cora_stream::json;

/// A set expression over two named streams, evaluated by the aggregator's
/// `set_f0` op via inclusion–exclusion over per-stream distinct-count
/// sketches (see `cora_serve::cluster`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SetOp {
    /// `|A ∪ B|`, estimated from the merged samplers (Property V).
    Union = 0,
    /// `|A ∩ B| = |A| + |B| − |A ∪ B|` (inclusion–exclusion).
    Intersect = 1,
    /// `|A ∖ B| = |A| − |A ∩ B|`.
    Diff = 2,
}

impl SetOp {
    /// The wire name of this operator.
    pub fn as_str(self) -> &'static str {
        match self {
            SetOp::Union => "union",
            SetOp::Intersect => "intersect",
            SetOp::Diff => "diff",
        }
    }

    /// Parse a wire name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "union" => Ok(SetOp::Union),
            "intersect" => Ok(SetOp::Intersect),
            "diff" => Ok(SetOp::Diff),
            other => Err(format!(
                "unknown set_op {other:?} (expected union, intersect, or diff)"
            )),
        }
    }

    /// Decode the binary tag (the `#[repr(u8)]` discriminant).
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SetOp::Union),
            1 => Some(SetOp::Intersect),
            2 => Some(SetOp::Diff),
            _ => None,
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Report the server's construction parameters.
    Config,
    /// Batch-ingest `(x, y)` tuples (parallel arrays, same length).
    Ingest {
        /// Item identifiers.
        xs: Vec<u64>,
        /// y values (must be ≤ the server's configured `y_max`).
        ys: Vec<u64>,
        /// Optional per-tuple timestamps in ticks (same length as `xs`);
        /// omitted tuples are stamped by the server's arrival counter.
        ts: Option<Vec<u64>>,
        /// Optional `(writer, seq)` idempotency pair: the server keeps a
        /// per-writer high-water mark and answers a batch at or below it
        /// with `accepted: 0, duplicate: 1` instead of applying it twice —
        /// what makes client-side replay after a reconnect safe.
        seq: Option<(u64, u64)>,
    },
    /// Read-your-writes barrier: drain the workers and republish the
    /// composite.
    Flush,
    /// Correlated `F_2` at threshold `c`.
    QueryF2 {
        /// Query threshold.
        c: u64,
    },
    /// Correlated distinct count at threshold `c`.
    QueryF0 {
        /// Query threshold.
        c: u64,
    },
    /// Correlated rarity at threshold `c`.
    QueryRarity {
        /// Query threshold.
        c: u64,
    },
    /// Correlated `F_2`-heavy hitters at threshold `c` with share `phi`.
    QueryHeavyHitters {
        /// Query threshold.
        c: u64,
        /// Minimum squared-frequency share of `F_2(c)`.
        phi: f64,
    },
    /// Windowed correlated `F_2` over the last `window` ticks at threshold `c`.
    WindowF2 {
        /// Window width in ticks (ending at the newest observed timestamp).
        window: u64,
        /// Query threshold.
        c: u64,
    },
    /// Windowed correlated `F_0` over the last `window` ticks at threshold `c`.
    WindowF0 {
        /// Window width in ticks (ending at the newest observed timestamp).
        window: u64,
        /// Query threshold.
        c: u64,
    },
    /// Service and structure statistics.
    Stats,
    /// Write a snapshot bundle to a server-side path.
    Snapshot {
        /// Server-side file path to write.
        path: String,
    },
    /// Stop accepting connections after acknowledging.
    Shutdown,
    /// Present the shared-secret token. When the server is configured with
    /// an `auth_token`, every other op on an unauthenticated connection is
    /// refused with a structured `request` error.
    Auth {
        /// The shared secret (compared constant-time server-side).
        token: String,
    },
    /// Set-expression distinct count over two named streams (aggregator
    /// only): `|A op B|` restricted to tuples with `y ≤ c`.
    SetF0 {
        /// Left stream name.
        a: String,
        /// Right stream name.
        b: String,
        /// The set operator.
        op: SetOp,
        /// Query threshold.
        c: u64,
    },
    /// List the registered upstream stream names (aggregator only).
    Streams,
    /// Replication handshake: registers `stream` and verifies the replica
    /// and aggregator were built from compatible configurations.
    ReplHello {
        /// Upstream stream name (`[A-Za-z0-9_.-]`, at most 64 bytes).
        stream: String,
        /// The replica's configuration fingerprint; must match the
        /// aggregator's or the handshake is refused (non-mergeable state).
        fingerprint: u64,
        /// The replica's current replication generation.
        g_to: u64,
    },
    /// Ship an incremental delta container (binary protocol only).
    ReplDelta {
        /// Upstream stream name.
        stream: String,
        /// The sealed `SnapshotKind::Delta` container.
        frame: Vec<u8>,
    },
    /// Ship a full replacement snapshot container (binary protocol only).
    ReplSnapshot {
        /// Upstream stream name.
        stream: String,
        /// The sealed `SnapshotKind::Delta` container with `g_from = 0`.
        frame: Vec<u8>,
    },
}

/// Emit a JSON array of unsigned integers (lossless, unlike float arrays).
pub fn u64_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

/// Parse a JSON array of unsigned integers.
pub fn parse_u64_array(raw: &str) -> Result<Vec<u64>, String> {
    let inner = raw
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("not a JSON array: {raw:?}"))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner.split(',').map(json::parse_u64).collect()
}

impl Request {
    /// Encode the request as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Ping => r#"{"op":"ping"}"#.to_string(),
            Request::Config => r#"{"op":"config"}"#.to_string(),
            Request::Ingest { xs, ys, ts, seq } => {
                let mut line = format!(
                    r#"{{"op":"ingest","xs":{},"ys":{}"#,
                    u64_array(xs),
                    u64_array(ys)
                );
                if let Some(ts) = ts {
                    line.push_str(&format!(r#","ts":{}"#, u64_array(ts)));
                }
                if let Some((writer, seq)) = seq {
                    line.push_str(&format!(r#","writer":{writer},"seq":{seq}"#));
                }
                line.push('}');
                line
            }
            Request::Flush => r#"{"op":"flush"}"#.to_string(),
            Request::QueryF2 { c } => format!(r#"{{"op":"f2","c":{c}}}"#),
            Request::QueryF0 { c } => format!(r#"{{"op":"f0","c":{c}}}"#),
            Request::QueryRarity { c } => format!(r#"{{"op":"rarity","c":{c}}}"#),
            Request::QueryHeavyHitters { c, phi } => format!(
                r#"{{"op":"heavy_hitters","c":{c},"phi":{}}}"#,
                json::float(*phi)
            ),
            Request::WindowF2 { window, c } => {
                format!(r#"{{"op":"window_f2","window":{window},"c":{c}}}"#)
            }
            Request::WindowF0 { window, c } => {
                format!(r#"{{"op":"window_f0","window":{window},"c":{c}}}"#)
            }
            Request::Stats => r#"{"op":"stats"}"#.to_string(),
            Request::Snapshot { path } => {
                format!(r#"{{"op":"snapshot","path":{}}}"#, json::escape(path))
            }
            Request::Shutdown => r#"{"op":"shutdown"}"#.to_string(),
            Request::Auth { token } => {
                format!(r#"{{"op":"auth","token":{}}}"#, json::escape(token))
            }
            Request::SetF0 { a, b, op, c } => format!(
                r#"{{"op":"set_f0","a":{},"b":{},"set_op":{},"c":{c}}}"#,
                json::escape(a),
                json::escape(b),
                json::escape(op.as_str())
            ),
            Request::Streams => r#"{"op":"streams"}"#.to_string(),
            Request::ReplHello { stream, fingerprint, g_to } => format!(
                r#"{{"op":"repl_hello","stream":{},"fingerprint":{fingerprint},"g_to":{g_to}}}"#,
                json::escape(stream)
            ),
            // The payload ops cannot travel as JSON (their frames are raw
            // binary); rendering just the op name lets a JSON server answer
            // with its structured binary-only refusal.
            Request::ReplDelta { stream, .. } => format!(
                r#"{{"op":"repl_delta","stream":{}}}"#,
                json::escape(stream)
            ),
            Request::ReplSnapshot { stream, .. } => format!(
                r#"{{"op":"repl_snapshot","stream":{}}}"#,
                json::escape(stream)
            ),
        }
    }

    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Self, String> {
        let fields = json::parse_object(line)?;
        let get = |name: &str| {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("missing field {name:?}"))
        };
        let op = json::parse_string(get("op")?)?;
        match op.as_str() {
            "ping" => Ok(Request::Ping),
            "config" => Ok(Request::Config),
            "ingest" => {
                let xs = parse_u64_array(get("xs")?)?;
                let ys = parse_u64_array(get("ys")?)?;
                if xs.len() != ys.len() {
                    return Err(format!(
                        "xs and ys must have equal length ({} vs {})",
                        xs.len(),
                        ys.len()
                    ));
                }
                let ts = fields
                    .iter()
                    .find(|(k, _)| k == "ts")
                    .map(|(_, v)| parse_u64_array(v))
                    .transpose()?;
                if let Some(ts) = &ts {
                    if ts.len() != xs.len() {
                        return Err(format!(
                            "ts must match xs length ({} vs {})",
                            ts.len(),
                            xs.len()
                        ));
                    }
                }
                let opt_u64 = |name: &str| -> Result<Option<u64>, String> {
                    fields
                        .iter()
                        .find(|(k, _)| k == name)
                        .map(|(_, v)| json::parse_u64(v))
                        .transpose()
                };
                let seq = match (opt_u64("writer")?, opt_u64("seq")?) {
                    (Some(writer), Some(seq)) => Some((writer, seq)),
                    (None, None) => None,
                    _ => {
                        return Err(
                            "writer and seq must be sent together (or both omitted)".into()
                        )
                    }
                };
                Ok(Request::Ingest { xs, ys, ts, seq })
            }
            "flush" => Ok(Request::Flush),
            "f2" => Ok(Request::QueryF2 { c: json::parse_u64(get("c")?)? }),
            "f0" => Ok(Request::QueryF0 { c: json::parse_u64(get("c")?)? }),
            "rarity" => Ok(Request::QueryRarity { c: json::parse_u64(get("c")?)? }),
            "heavy_hitters" => Ok(Request::QueryHeavyHitters {
                c: json::parse_u64(get("c")?)?,
                phi: json::parse_f64(get("phi")?)?,
            }),
            "window_f2" => Ok(Request::WindowF2 {
                window: json::parse_u64(get("window")?)?,
                c: json::parse_u64(get("c")?)?,
            }),
            "window_f0" => Ok(Request::WindowF0 {
                window: json::parse_u64(get("window")?)?,
                c: json::parse_u64(get("c")?)?,
            }),
            "stats" => Ok(Request::Stats),
            "snapshot" => Ok(Request::Snapshot {
                path: json::parse_string(get("path")?)?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            "auth" => Ok(Request::Auth {
                token: json::parse_string(get("token")?)?,
            }),
            "set_f0" => Ok(Request::SetF0 {
                a: json::parse_string(get("a")?)?,
                b: json::parse_string(get("b")?)?,
                op: SetOp::parse(&json::parse_string(get("set_op")?)?)?,
                c: json::parse_u64(get("c")?)?,
            }),
            "streams" => Ok(Request::Streams),
            "repl_hello" => Ok(Request::ReplHello {
                stream: json::parse_string(get("stream")?)?,
                fingerprint: json::parse_u64(get("fingerprint")?)?,
                g_to: json::parse_u64(get("g_to")?)?,
            }),
            "repl_delta" | "repl_snapshot" => Err(format!(
                "{op} is only available on the binary protocol \
                 (its payload is a sealed binary delta container)"
            )),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// One typed response field value — the protocol-agnostic layer between
/// [`crate::server`] and the two renderings (JSON text here, binary frames
/// in [`crate::wire`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (lossless above 2⁵³, unlike `f64`).
    U64(u64),
    /// A floating-point estimate.
    F64(f64),
    /// An array of unsigned integers.
    U64Array(Vec<u64>),
    /// An array of floating-point values.
    F64Array(Vec<f64>),
    /// An absent/optional value (`null` in JSON).
    Null,
    /// A string value (escaped in JSON, length-prefixed in binary).
    Str(String),
}

impl Value {
    /// Render as raw JSON text — exactly what the line protocol has always
    /// emitted for this kind of field, so the JSON rendering of a [`Reply`]
    /// is byte-identical to the pre-`Reply` server.
    pub fn render_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::F64(v) => json::float(*v),
            Value::U64Array(vs) => u64_array(vs),
            Value::F64Array(vs) => json::float_array(vs),
            Value::Null => "null".to_string(),
            Value::Str(s) => json::escape(s),
        }
    }
}

/// What failed, at the granularity a client can act on: retry the request
/// (`Request`), surface a data problem (`Sketch`), treat the server's
/// storage as degraded (`Io`), or back off entirely (`Server`). Carried on
/// both transports (a `kind` field in JSON, a trailing string in binary
/// error frames) so snapshot/journal I/O failures are distinguishable from
/// a bad request without parsing prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request itself was malformed or out of range.
    Request,
    /// A hosted sketch rejected the operation.
    Sketch,
    /// Server-side storage (journal append or snapshot write) failed; the
    /// message carries the underlying `io::Error` detail.
    Io,
    /// A server-side resource limit or internal failure.
    Server,
}

impl ErrorKind {
    /// The wire name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Request => "request",
            ErrorKind::Sketch => "sketch",
            ErrorKind::Io => "io",
            ErrorKind::Server => "server",
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured server-side failure: the kind plus a human-readable
/// message.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBody {
    /// What failed.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

/// A protocol-agnostic server response: the server core produces these and
/// each transport renders them (`render_json` here; frames in
/// [`crate::wire`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Success, with named result fields.
    Ok(Vec<(&'static str, Value)>),
    /// Failure, with a structured kind and message.
    Error(ErrorBody),
}

impl Reply {
    /// The bare success reply.
    pub fn ok() -> Self {
        Reply::Ok(Vec::new())
    }

    /// A malformed-request failure.
    pub fn request_error(message: impl Into<String>) -> Self {
        Reply::Error(ErrorBody { kind: ErrorKind::Request, message: message.into() })
    }

    /// A sketch-rejected-the-operation failure.
    pub fn sketch_error(message: impl Into<String>) -> Self {
        Reply::Error(ErrorBody { kind: ErrorKind::Sketch, message: message.into() })
    }

    /// A storage (journal/snapshot) I/O failure.
    pub fn io_error(message: impl Into<String>) -> Self {
        Reply::Error(ErrorBody { kind: ErrorKind::Io, message: message.into() })
    }

    /// A server-side limit or internal failure.
    pub fn server_error(message: impl Into<String>) -> Self {
        Reply::Error(ErrorBody { kind: ErrorKind::Server, message: message.into() })
    }

    /// Render as one JSON response line (no trailing newline), byte-identical
    /// to [`ok_with`]/[`error_with_kind`] output.
    pub fn render_json(&self) -> String {
        match self {
            Reply::Ok(fields) => {
                let rendered: Vec<(&str, String)> = fields
                    .iter()
                    .map(|(key, value)| (*key, value.render_json()))
                    .collect();
                ok_with(&rendered)
            }
            Reply::Error(body) => error_with_kind(body.kind, &body.message),
        }
    }
}

/// Build a success response from `(key, raw JSON value)` pairs.
pub fn ok_with(fields: &[(&str, String)]) -> String {
    let mut out = String::from(r#"{"ok":true"#);
    for (key, value) in fields {
        out.push(',');
        out.push_str(&json::escape(key));
        out.push(':');
        out.push_str(value);
    }
    out.push('}');
    out
}

/// The bare success response.
pub fn ok() -> String {
    ok_with(&[])
}

/// Build an error response of kind [`ErrorKind::Request`] (the default for
/// protocol-level refusals: unparseable lines, unknown first bytes).
pub fn error(message: &str) -> String {
    error_with_kind(ErrorKind::Request, message)
}

/// Build an error response carrying an explicit kind.
pub fn error_with_kind(kind: ErrorKind, message: &str) -> String {
    format!(
        r#"{{"ok":false,"error":{},"kind":{}}}"#,
        json::escape(message),
        json::escape(kind.as_str())
    )
}

/// A parsed response line (client side).
#[derive(Debug, Clone)]
pub struct Response {
    fields: Vec<(String, String)>,
}

impl Response {
    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Self, String> {
        Ok(Self {
            fields: json::parse_object(line)?,
        })
    }

    /// Build a response from already-decoded `(key, raw JSON value)` pairs —
    /// the binary client renders decoded frame fields through
    /// [`Value::render_json`] so both transports expose the same accessors
    /// with identical semantics.
    pub(crate) fn from_fields(fields: Vec<(String, String)>) -> Self {
        Self { fields }
    }

    /// The raw JSON text of a field.
    pub fn raw(&self, name: &str) -> Result<&str, String> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("response missing field {name:?}"))
    }

    /// True when the server reported success.
    pub fn is_ok(&self) -> bool {
        self.raw("ok").map(str::trim) == Ok("true")
    }

    /// The server's error message, if any.
    pub fn error_message(&self) -> Option<String> {
        if self.is_ok() {
            return None;
        }
        Some(
            self.raw("error")
                .ok()
                .and_then(|raw| json::parse_string(raw).ok())
                .unwrap_or_else(|| "malformed error response".to_string()),
        )
    }

    /// The server's error kind (`"request"`, `"sketch"`, `"io"`,
    /// `"server"`), if this is an error response. Responses from servers
    /// predating structured kinds report `"server"`.
    pub fn error_kind(&self) -> Option<String> {
        if self.is_ok() {
            return None;
        }
        Some(
            self.raw("kind")
                .ok()
                .and_then(|raw| json::parse_string(raw).ok())
                .unwrap_or_else(|| ErrorKind::Server.as_str().to_string()),
        )
    }

    /// Decode a numeric field as `f64`.
    pub fn f64_field(&self, name: &str) -> Result<f64, String> {
        json::parse_f64(self.raw(name)?)
    }

    /// Decode a numeric field as `u64`.
    pub fn u64_field(&self, name: &str) -> Result<u64, String> {
        json::parse_u64(self.raw(name)?)
    }

    /// Decode a string field.
    pub fn str_field(&self, name: &str) -> Result<String, String> {
        json::parse_string(self.raw(name)?)
    }

    /// Decode a u64-array field.
    pub fn u64_array_field(&self, name: &str) -> Result<Vec<u64>, String> {
        parse_u64_array(self.raw(name)?)
    }

    /// Decode an f64-array field.
    pub fn f64_array_field(&self, name: &str) -> Result<Vec<f64>, String> {
        json::parse_f64_array(self.raw(name)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_encode_parse() {
        let requests = [
            Request::Ping,
            Request::Config,
            Request::Ingest {
                xs: vec![1, u64::MAX, 3],
                ys: vec![10, 20, 30],
                ts: None,
                seq: None,
            },
            Request::Ingest {
                xs: vec![4, 5],
                ys: vec![6, 7],
                ts: Some(vec![100, 99]),
                seq: None,
            },
            Request::Ingest {
                xs: vec![8],
                ys: vec![9],
                ts: None,
                seq: Some((3, u64::MAX)),
            },
            Request::Flush,
            Request::QueryF2 { c: 100 },
            Request::QueryF0 { c: 0 },
            Request::QueryRarity { c: u64::MAX },
            Request::QueryHeavyHitters { c: 7, phi: 0.125 },
            Request::WindowF2 { window: 3_600, c: 42 },
            Request::WindowF0 { window: 60, c: u64::MAX },
            Request::Stats,
            Request::Snapshot {
                path: "/tmp/with \"quotes\".snap".to_string(),
            },
            Request::Shutdown,
            Request::Auth { token: "hunter\"2\"".to_string() },
            Request::SetF0 {
                a: "node-a".to_string(),
                b: "node-b".to_string(),
                op: SetOp::Intersect,
                c: 100,
            },
            Request::Streams,
            Request::ReplHello {
                stream: "node-a".to_string(),
                fingerprint: u64::MAX,
                g_to: 17,
            },
        ];
        for request in requests {
            let line = request.encode();
            assert_eq!(Request::parse(&line).unwrap(), request, "line: {line}");
        }
    }

    #[test]
    fn repl_payload_ops_are_binary_only_over_json() {
        for request in [
            Request::ReplDelta { stream: "a".into(), frame: vec![1, 2, 3] },
            Request::ReplSnapshot { stream: "a".into(), frame: vec![] },
        ] {
            let e = Request::parse(&request.encode()).unwrap_err();
            assert!(e.contains("binary protocol"), "{e}");
        }
        for op in ["union", "intersect", "diff"] {
            assert_eq!(SetOp::parse(op).unwrap().as_str(), op);
        }
        assert!(SetOp::parse("xor").is_err());
        assert_eq!(SetOp::from_tag(2), Some(SetOp::Diff));
        assert_eq!(SetOp::from_tag(3), None);
    }

    #[test]
    fn u64_arrays_are_lossless_above_2_pow_53() {
        let values = vec![0, 1 << 60, u64::MAX, (1 << 53) + 1];
        let encoded = u64_array(&values);
        assert_eq!(parse_u64_array(&encoded).unwrap(), values);
        assert_eq!(parse_u64_array("[]").unwrap(), Vec::<u64>::new());
        assert!(parse_u64_array("{}").is_err());
        assert!(parse_u64_array("[1,-2]").is_err());
    }

    #[test]
    fn malformed_requests_error_cleanly() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"op":"warp"}"#).is_err());
        assert!(Request::parse(r#"{"op":"f2"}"#).is_err(), "missing c");
        assert!(
            Request::parse(r#"{"op":"ingest","xs":[1],"ys":[1,2]}"#).is_err(),
            "length mismatch"
        );
        assert!(
            Request::parse(r#"{"op":"ingest","xs":[1],"ys":[1],"ts":[1,2]}"#).is_err(),
            "ts length mismatch"
        );
        assert!(
            Request::parse(r#"{"op":"ingest","xs":[1],"ys":[1],"writer":4}"#).is_err(),
            "writer without seq"
        );
        assert!(
            Request::parse(r#"{"op":"ingest","xs":[1],"ys":[1],"seq":4}"#).is_err(),
            "seq without writer"
        );
        assert!(Request::parse(r#"{"op":"window_f2","c":9}"#).is_err(), "missing window");
    }

    #[test]
    fn responses_parse_ok_error_and_fields() {
        let ok_line = ok_with(&[
            ("value", "1.5".to_string()),
            ("items", u64_array(&[7, 9])),
        ]);
        let response = Response::parse(&ok_line).unwrap();
        assert!(response.is_ok());
        assert_eq!(response.f64_field("value").unwrap(), 1.5);
        assert_eq!(response.u64_array_field("items").unwrap(), vec![7, 9]);
        assert!(response.error_message().is_none());

        let err_line = error("y 5000 out of range");
        let response = Response::parse(&err_line).unwrap();
        assert!(!response.is_ok());
        assert_eq!(response.error_message().unwrap(), "y 5000 out of range");
        assert_eq!(response.error_kind().unwrap(), "request");

        let io_line = error_with_kind(ErrorKind::Io, "journal append failed");
        let response = Response::parse(&io_line).unwrap();
        assert_eq!(response.error_kind().unwrap(), "io");
        // Errors from pre-kind servers degrade to the generic kind.
        let legacy = Response::parse(r#"{"ok":false,"error":"old"}"#).unwrap();
        assert_eq!(legacy.error_kind().unwrap(), "server");
        assert_eq!(legacy.error_message().unwrap(), "old");
    }
}
