//! The background merger: epoch-published composites rebuilt off the read
//! path.
//!
//! PR 4's `ShardedIngest::with_merge_every(k)` bounded how *often* the
//! N-shard composite is re-merged, but the merge itself still ran on
//! whichever thread happened to query first — a latency spike exactly where
//! a serving system least wants one. This module moves the rebuild onto a
//! **dedicated merger thread**:
//!
//! * the merger polls the shards' applied-batch generations through a
//!   [`ShardReader`] (one atomic load per shard per poll tick);
//! * once at least `merge_every` new batches have been applied since the
//!   published composite was built — or a [`refresh`](BackgroundMerger::refresh)
//!   barrier forces it — the merger rebuilds the composite (locking each
//!   shard sketch briefly, exactly like a foreground merge would) and
//!   **publishes** it by swapping an `Arc` behind a mutex held only for the
//!   pointer swap;
//! * readers call [`current`](BackgroundMerger::current), which clones that
//!   `Arc` — a reader arriving mid-rebuild gets the previous epoch
//!   immediately instead of waiting for the merge (this non-blocking bound
//!   is pinned by `query_during_slow_rebuild_does_not_block` below, using
//!   the [`slow-merge hook`](BackgroundMerger::spawn_with_hook)).
//!
//! ## Staleness bound, end to end
//!
//! Let `B` be the ingest batch size. Once the lag trigger is reached, a
//! rebuild starts as soon as a reader has shown up (every
//! [`current`](BackgroundMerger::current) bumps a demand counter) or the
//! published composite is older than the [`STALENESS_FLOOR`]; reads lag
//! writes by `O(merge_every · B)` tuples plus the floor plus one merge
//! duration — and never block. Tuples still buffered or in the SPSC rings
//! are invisible to even a foreground merge; `ShardedIngest::flush` +
//! [`refresh`](BackgroundMerger::refresh) is the read-your-writes barrier
//! over everything accepted.
//!
//! ## Demand- and duty-bounded rebuilds
//!
//! Rebuilding a composite costs real CPU — on a small box it competes with
//! ingest for cores, and an ingest-only workload (a loader, the
//! `serve_ingest` bench) used to pay a ~2x tax for composites nobody read.
//! The loop therefore rebuilds only when (a) a
//! [`refresh`](BackgroundMerger::refresh) barrier forces
//! it, or (b) the lag trigger has fired **and** either a reader has asked
//! for a composite since the last publish or the staleness floor has
//! elapsed. Unforced rebuilds are additionally duty-capped: after a rebuild
//! that took `d`, the next unforced one waits at least `d`, bounding the
//! merger at half a core even under a query storm.

use cora_core::{CoreError, CorrelatedAggregate, CorrelatedSketch, Result};
use cora_stream::sharded::{staleness, ShardReader};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// How long the merger parks between generation polls while idle.
const POLL_INTERVAL: Duration = Duration::from_micros(500);

/// Wall-clock freshness floor: with the lag trigger fired but no reader
/// demand, a rebuild still runs once the published composite is this old,
/// so an idle-reader system converges instead of serving arbitrarily stale
/// epochs to the *first* query that eventually arrives.
pub const STALENESS_FLOOR: Duration = Duration::from_millis(250);

/// Test/ops instrumentation invoked between building a composite and
/// publishing it (e.g. an artificial delay proving readers don't block).
pub type MergeHook = Arc<dyn Fn() + Send + Sync>;

/// One published composite: the merged sketch, the per-shard generation
/// vector it was built from, and its publish epoch.
#[derive(Debug)]
pub struct EpochComposite<A: CorrelatedAggregate> {
    sketch: CorrelatedSketch<A>,
    built_from: Vec<u64>,
    epoch: u64,
}

impl<A: CorrelatedAggregate> EpochComposite<A> {
    /// The merged composite sketch (full query surface).
    pub fn sketch(&self) -> &CorrelatedSketch<A> {
        &self.sketch
    }

    /// Per-shard applied-batch counters the composite was built from.
    pub fn built_from(&self) -> &[u64] {
        &self.built_from
    }

    /// Monotone publish counter (0 = the initial empty composite).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Shared state between the merger thread and readers.
struct Shared<A: CorrelatedAggregate + Send + Sync + 'static>
where
    CorrelatedSketch<A>: Send + Sync,
{
    reader: ShardReader<A>,
    /// The published composite. The lock is held only to clone or swap the
    /// `Arc` — never across a rebuild — so readers are wait-free in
    /// practice.
    published: Mutex<Arc<EpochComposite<A>>>,
    /// Rebuild trigger: staleness (in applied batches) that forces a
    /// re-merge.
    merge_every: u64,
    /// Set by [`BackgroundMerger::refresh`] to force a rebuild regardless of
    /// staleness.
    force: AtomicBool,
    /// Reader arrivals since the last publish — the demand signal that lets
    /// an ingest-only workload skip rebuilds nobody would read.
    demand: AtomicU64,
    shutdown: AtomicBool,
    /// Rebuilds completed (diagnostics; epoch of the current composite).
    epoch: AtomicU64,
    hook: Option<MergeHook>,
}

impl<A: CorrelatedAggregate + Send + Sync + 'static> Shared<A>
where
    CorrelatedSketch<A>: Send + Sync,
{
    /// The published composite without registering reader demand (the
    /// merger loop's own view).
    fn peek(&self) -> Arc<EpochComposite<A>> {
        self.published
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn current(&self) -> Arc<EpochComposite<A>> {
        self.demand.fetch_add(1, Ordering::Relaxed);
        self.peek()
    }

    fn publish(&self, built_from: Vec<u64>, sketch: CorrelatedSketch<A>) {
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        let composite = Arc::new(EpochComposite {
            sketch,
            built_from,
            epoch,
        });
        *self
            .published
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = composite;
    }
}

/// The merger loop: poll generations; rebuild + publish when a forced
/// refresh fires, or when the lag trigger has been reached *and* the
/// rebuild is wanted (reader demand since the last publish, or the
/// staleness floor elapsed) *and* the duty cap allows it; park briefly
/// otherwise.
fn merger_loop<A>(shared: &Shared<A>)
where
    A: CorrelatedAggregate + Send + Sync + 'static,
    CorrelatedSketch<A>: Send + Sync,
{
    let mut last_publish = Instant::now();
    let mut last_cost = Duration::ZERO;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let current = shared.reader.generations();
        let lag = staleness(&shared.peek().built_from, &current);
        let forced = shared.force.swap(false, Ordering::AcqRel);
        // Order matters: the demand counter is consumed (swapped to zero)
        // only once the lag trigger and the duty cap both allow a rebuild,
        // so demand arriving during the cooldown is not silently dropped.
        let since_publish = last_publish.elapsed();
        let due = lag >= shared.merge_every
            && since_publish >= last_cost
            && (shared.demand.swap(0, Ordering::AcqRel) > 0
                || since_publish >= STALENESS_FLOOR);
        if forced || due {
            let start = Instant::now();
            match shared.reader.build_composite() {
                Ok((built_from, sketch)) => {
                    if let Some(hook) = &shared.hook {
                        hook();
                    }
                    shared.publish(built_from, sketch);
                    last_cost = start.elapsed();
                    last_publish = Instant::now();
                }
                Err(_) => {
                    // A failed merge (config drift mid-shutdown) leaves the
                    // previous epoch published; back off instead of spinning.
                    thread::park_timeout(10 * POLL_INTERVAL);
                }
            }
        } else {
            thread::park_timeout(POLL_INTERVAL);
        }
    }
}

/// Owns the merger thread and the epoch-published composite.
///
/// Dropping the merger shuts the thread down and joins it; the last
/// published composite stays readable through any outstanding `Arc`s.
pub struct BackgroundMerger<A: CorrelatedAggregate + Send + Sync + 'static>
where
    CorrelatedSketch<A>: Send + Sync,
{
    shared: Arc<Shared<A>>,
    worker: Option<thread::JoinHandle<()>>,
}

impl<A> BackgroundMerger<A>
where
    A: CorrelatedAggregate + Send + Sync + 'static,
    CorrelatedSketch<A>: Send + Sync,
{
    /// Spawn a merger over `reader`, rebuilding once at least `merge_every`
    /// new batches (≥ 1) have been applied since the published composite was
    /// built. The initial composite is built synchronously so readers always
    /// have an epoch to hit.
    pub fn spawn(reader: ShardReader<A>, merge_every: u64) -> Result<Self> {
        Self::spawn_with_hook(reader, merge_every, None)
    }

    /// [`Self::spawn`] with a hook run between each rebuild and its publish
    /// — test instrumentation (an artificially slow merge proves readers
    /// never wait on one).
    pub fn spawn_with_hook(
        reader: ShardReader<A>,
        merge_every: u64,
        hook: Option<MergeHook>,
    ) -> Result<Self> {
        let (built_from, sketch) = reader.build_composite()?;
        let shared = Arc::new(Shared {
            reader,
            published: Mutex::new(Arc::new(EpochComposite {
                sketch,
                built_from,
                epoch: 0,
            })),
            merge_every: merge_every.max(1),
            force: AtomicBool::new(false),
            demand: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            hook,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = thread::Builder::new()
            .name("cora-merger".into())
            .spawn(move || merger_loop(&worker_shared))
            .map_err(|e| CoreError::InvalidParameter {
                name: "merger",
                detail: format!("could not spawn the background merger: {e}"),
            })?;
        Ok(Self {
            shared,
            worker: Some(worker),
        })
    }

    /// The currently published composite — an `Arc` clone, never a wait on
    /// an in-flight rebuild.
    pub fn current(&self) -> Arc<EpochComposite<A>> {
        self.shared.current()
    }

    /// Publish epoch of the current composite (monotone; 0 = initial).
    /// Read from the published slot itself, so it can never run ahead of
    /// what [`Self::current`] returns.
    pub fn epoch(&self) -> u64 {
        self.current().epoch
    }

    /// Staleness of the published composite right now, in applied batches.
    pub fn staleness_batches(&self) -> u64 {
        staleness(
            &self.current().built_from,
            &self.shared.reader.generations(),
        )
    }

    /// Barrier: force rebuilds until the published composite covers every
    /// batch **applied before this call**, then return. Combined with
    /// `ShardedIngest::flush` (which drains accepted tuples into applied
    /// batches) this gives read-your-writes over everything accepted.
    pub fn refresh(&self) {
        let target = self.shared.reader.generations();
        let mut spins = 0u32;
        loop {
            if staleness(&self.current().built_from, &target) == 0 {
                return;
            }
            self.shared.force.store(true, Ordering::Release);
            if let Some(worker) = &self.worker {
                worker.thread().unpark();
            }
            spins = spins.saturating_add(1);
            if spins < 64 {
                thread::yield_now();
            } else {
                thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

impl<A> Drop for BackgroundMerger<A>
where
    A: CorrelatedAggregate + Send + Sync + 'static,
    CorrelatedSketch<A>: Send + Sync,
{
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(worker) = self.worker.take() {
            worker.thread().unpark();
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_stream::sharded::sharded_correlated_f2;
    use std::time::Instant;

    fn fill(
        sharded: &mut cora_stream::ShardedIngest<cora_core::F2Aggregate>,
        n: u64,
        offset: u64,
    ) {
        for i in 0..n {
            sharded.insert((offset + i) % 50, (offset + i) % 1024).unwrap();
        }
        sharded.flush();
    }

    #[test]
    fn merger_publishes_fresh_composites_and_refresh_is_a_barrier() {
        let mut sharded = sharded_correlated_f2(0.3, 0.1, 1023, 100_000, 7, 2)
            .unwrap()
            .with_batch_size(64);
        let merger = BackgroundMerger::spawn(sharded.reader(), 1).unwrap();
        assert_eq!(merger.current().sketch().items_processed(), 0);
        fill(&mut sharded, 2_000, 0);
        merger.refresh();
        let composite = merger.current();
        assert_eq!(composite.sketch().items_processed(), 2_000);
        assert!(composite.epoch() >= 1);
        assert_eq!(merger.staleness_batches(), 0);
        // Matches a foreground merge exactly.
        assert_eq!(
            composite.sketch().query(512).unwrap(),
            sharded.query(512).unwrap()
        );
    }

    #[test]
    fn query_during_slow_rebuild_does_not_block() {
        // An artificially slow merge (the acceptance criterion's slow-merge
        // hook): queries issued while the rebuild is in flight must return
        // immediately with the previous epoch.
        let mut sharded = sharded_correlated_f2(0.3, 0.1, 1023, 100_000, 7, 2)
            .unwrap()
            .with_batch_size(64);
        let delay = Duration::from_millis(400);
        let merger = BackgroundMerger::spawn_with_hook(
            sharded.reader(),
            1,
            Some(Arc::new(move || thread::sleep(delay))),
        )
        .unwrap();
        let before = merger.current();
        fill(&mut sharded, 1_000, 0); // triggers a (slow) background rebuild
        // Give the merger a moment to pick up the trigger and enter the
        // slow hook, then query mid-rebuild.
        thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        let during = merger.current();
        let answer = during.sketch().query(1023).unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed < delay / 4,
            "reader waited {elapsed:?} on a {delay:?} rebuild"
        );
        assert_eq!(during.epoch(), before.epoch(), "mid-rebuild reads serve the previous epoch");
        assert_eq!(answer, before.sketch().query(1023).unwrap());
        // The barrier waits the rebuild out and then sees everything.
        merger.refresh();
        assert_eq!(merger.current().sketch().items_processed(), 1_000);
    }

    #[test]
    fn merge_every_k_bounds_published_staleness() {
        let mut sharded = sharded_correlated_f2(0.3, 0.1, 1023, 100_000, 7, 2)
            .unwrap()
            .with_batch_size(32);
        let merger = BackgroundMerger::spawn(sharded.reader(), 1_000_000).unwrap();
        // Far below the trigger: the initial epoch stays published even
        // though batches were applied (staleness is visible and bounded).
        fill(&mut sharded, 320, 0); // 10 batches << 1_000_000
        thread::sleep(Duration::from_millis(20));
        assert_eq!(merger.epoch(), 0, "below the trigger nothing is republished");
        assert_eq!(merger.staleness_batches(), 10);
        // The forced barrier still works under an arbitrarily large k.
        merger.refresh();
        assert_eq!(merger.current().sketch().items_processed(), 320);
    }
}
