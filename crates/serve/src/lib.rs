//! # cora-serve
//!
//! The serving layer of the cora workspace: everything needed to keep a set
//! of correlated sketches **always on** — ingesting from many clients,
//! answering queries with bounded staleness and without ever blocking on a
//! composite rebuild, and surviving restarts through snapshots.
//!
//! Four cooperating pieces:
//!
//! * [`merger`] — a **background merger**: a dedicated thread that watches a
//!   [`cora_stream::ShardedIngest`]'s shard generations through a
//!   [`cora_stream::ShardReader`], rebuilds the merged composite off the
//!   read path whenever the merge-every-`k` trigger fires, and publishes it
//!   behind an epoch-tagged atomic slot ([`merger::BackgroundMerger`]).
//!   Readers take an `Arc` clone of the current composite — a pointer copy —
//!   so a query issued *during* a rebuild returns immediately against the
//!   previous epoch instead of waiting (the former ROADMAP item "composite
//!   rebuilds run on the querying thread" ends here);
//! * **snapshot persistence & crash-safe durability** — the server bundles
//!   the framework/F0/rarity/heavy-hitters snapshot frames of
//!   `cora_core::snapshot` into one checksummed file
//!   ([`server::RunningServer`] op `snapshot`), and
//!   [`server::start_restored`] boots a server from such a file with
//!   bit-identical answers. With [`server::DurabilityConfig`] set, a
//!   write-ahead [`journal`] makes every acked ingest batch crash-safe:
//!   batches are journaled (fsync'd) before they are applied, a background
//!   thread rotates snapshot generations, and recovery-on-start restores
//!   the newest readable snapshot plus the journal tail — proven by a
//!   deterministic fault-injection harness ([`faults`]) and `SIGKILL`
//!   process tests. [`retry::RetryingClient`] completes the story
//!   client-side with reconnect, exponential backoff, and idempotent
//!   sequence-numbered replay;
//! * [`server`] / [`client`] / [`wire`] — a `std::net::TcpListener` server
//!   speaking **two wire protocols**, negotiated per connection by its
//!   first byte: newline-delimited JSON (reusing `cora_stream::json`) and
//!   a length-prefixed **binary frame protocol** ([`wire`]) with pipelined
//!   no-ack batch ingest. Both expose the same ops — batch ingest,
//!   `f2`/`f0`/`rarity`/heavy-hitter queries, windowed slices, flush,
//!   snapshot, stats — with bit-identical answers. Connections are
//!   multiplexed over a small fixed worker pool and bounded by
//!   [`server::ServeConfig::max_connections`]. The blocking
//!   [`client::ServeClient`] speaks either protocol and is used by the
//!   `serve_demo` example and the `serve_latency` bench;
//! * [`cluster`] — **distributed fan-in**: ingest nodes replicate their
//!   sketch state as checksummed delta containers over the binary wire
//!   ([`server::ServeConfig::replicate`]) into an aggregator
//!   ([`start_aggregator`] / the `cora_serve_agg` binary) that serves
//!   every query family over the union of all streams (Property V
//!   mergeability) plus `set_f0` set-expression queries
//!   (`|A ∪ B|`, `|A ∩ B|`, `|A ∖ B|` under `y ≤ c`), with chain-checked
//!   deltas, full-resync fallback, warm standby from a dead upstream's
//!   durable directory, and an optional shared-secret auth gate
//!   ([`server::ServeConfig::auth_token`]) on both transports.
//!
//! ## Consistency model
//!
//! Ingest is accepted in batches and applied by the sharded workers; the
//! published composite is rebuilt in the background once at least
//! `merge_every` new batches have been applied since it was built. A query
//! therefore observes a composite that lags ingest by **at most
//! `merge_every − 1` applied batches plus one in-flight rebuild**, and never
//! waits for that rebuild. `flush` is the read-your-writes barrier: it
//! drains the workers *and* blocks until the published composite covers
//! every batch applied before the call.
//!
//! ```no_run
//! use cora_serve::client::ServeClient;
//! use cora_serve::server::{start, ServeConfig};
//!
//! let server = start(ServeConfig::default(), "127.0.0.1:0").unwrap();
//! let mut client = ServeClient::connect(server.local_addr()).unwrap();
//! client.ingest(&[(1, 10), (2, 20), (1, 900)]).unwrap();
//! client.flush().unwrap();
//! let f2 = client.query_f2(100).unwrap();
//! assert!(f2 > 0.0);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod cluster;
pub mod faults;
pub mod journal;
pub mod merger;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod wire;

pub use client::ServeClient;
pub use cluster::{start_aggregator, start_aggregator_seeded};
pub use faults::{FaultPlan, FaultyStorage};
pub use journal::{DiskStorage, JournalWriter, Storage};
pub use merger::BackgroundMerger;
pub use retry::{RetryPolicy, RetryingClient};
pub use server::{
    start, start_restored, start_with_storage, DurabilityConfig, ReplicateConfig, RunningServer,
    ServeConfig, ServeError,
};
