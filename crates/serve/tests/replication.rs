//! Integration tests for the distributed fan-in subsystem: the delta
//! container, the auth gate, node→aggregator replication against a
//! single-server oracle, set-expression queries, warm standby, and a
//! mid-delta link kill with bit-identical convergence.
//!
//! The oracle discipline throughout: a plain single server ingests the
//! concatenation of every upstream's tuples, and the aggregator's union
//! answers are asserted **exactly equal** to the oracle's. Property V
//! guarantees the merged sketch is a valid `ε`-sketch of the union in
//! general; at the stream sizes used here no bucket eviction occurs, so
//! merge-then-query equals sequential-then-query bit for bit (the same
//! regime `tests/tests/sharded_merge.rs` proves by property testing). The
//! large-scale `ε`-equivalence story is exercised by the
//! `replication_demo` example instead.

use cora_core::snapshot::{open_delta, seal_delta_into};
use cora_core::DeltaHeader;
use cora_serve::client::{ClientError, ServeClient};
use cora_serve::cluster::start_aggregator_seeded;
use cora_serve::protocol::SetOp;
use cora_serve::server::{
    start, DurabilityConfig, ReplicateConfig, RunningServer, ServeConfig,
};
use cora_serve::start_aggregator;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const Y_MAX: u64 = 1023;

/// The same sketch geometry on every node, the aggregator, and the oracle:
/// the replication handshake fingerprints these parameters and refuses a
/// mismatch, and Property V only holds for identical construction.
fn sketch_config() -> ServeConfig {
    ServeConfig {
        epsilon: 0.25,
        delta: 0.1,
        y_max: Y_MAX,
        max_stream_len: 100_000,
        seed: 11,
        shards: 2,
        merge_every: 1,
        x_domain_log2: 16,
        pane_ticks: 64,
        ..ServeConfig::default()
    }
}

fn node_config(target: &str, stream: &str) -> ServeConfig {
    ServeConfig {
        replicate: Some(ReplicateConfig {
            interval_ms: 20,
            ..ReplicateConfig::new(target, stream)
        }),
        ..sketch_config()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cora-replication-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Deterministic per-stream tuples: distinct x-ranges per `salt` so set
/// expressions over two streams have known overlap structure.
fn tuples(salt: u64, n: u64) -> Vec<(u64, u64)> {
    (0..n)
        .map(|i| ((salt * 200 + i) % 3_000, (i * 193 + salt * 7) % (Y_MAX + 1)))
        .collect()
}

/// One probed threshold: `(c, f2, f0, rarity, heavy hitters as
/// `(item, frequency bits)`)`.
type ProbeRow = (u64, f64, f64, f64, Vec<(u64, u64)>);

/// Ask all four aggregate queries at a couple of thresholds; used to
/// compare an aggregator against the oracle field by field.
fn probe(client: &mut ServeClient) -> Vec<ProbeRow> {
    [Y_MAX / 4, Y_MAX / 2, Y_MAX]
        .iter()
        .map(|&c| {
            let hh = client
                .query_heavy_hitters(c, 0.05)
                .expect("heavy hitters")
                .into_iter()
                .map(|h| (h.item, h.frequency.to_bits()))
                .collect();
            (
                c,
                client.query_f2(c).expect("f2"),
                client.query_f0(c).expect("f0"),
                client.query_rarity(c).expect("rarity"),
                hh,
            )
        })
        .collect()
}

/// Block until the node's replicator reports every pre-call ingest acked by
/// the aggregator, retrying across transient link failures.
fn sync_replication(server: &RunningServer) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match server.replication_sync(Duration::from_secs(2)) {
            Ok(_) => return,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("replication did not converge: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Delta container
// ---------------------------------------------------------------------------

#[test]
fn delta_container_round_trips_and_rejects_damage() {
    let header = DeltaHeader {
        g_from: 3,
        g_to: 9,
        fingerprint: 0xfeed_beef_dead_cafe,
    };
    let sections: Vec<(u8, &[u8])> = vec![
        (1, b"first section payload".as_slice()),
        (2, b"".as_slice()),
        (7, &[0xAB; 300]),
    ];
    let mut frame = Vec::new();
    seal_delta_into(&header, &sections, &mut frame);

    let (opened_header, opened_sections) = open_delta(&frame).expect("round trip");
    assert_eq!(opened_header, header);
    assert_eq!(opened_sections.len(), sections.len());
    for ((tag, bytes), (want_tag, want_bytes)) in opened_sections.iter().zip(&sections) {
        assert_eq!(tag, want_tag);
        assert_eq!(bytes, want_bytes);
    }

    // Torn writes: every proper prefix must be rejected, never misread.
    for cut in 0..frame.len() {
        assert!(
            open_delta(&frame[..cut]).is_err(),
            "torn frame of {cut} bytes was accepted"
        );
    }
    // Single-bit corruption anywhere must be caught by the checksum (or, for
    // header-adjacent bits, by structural validation) — never silently
    // change the payload.
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut bent = frame.clone();
            bent[byte] ^= 1 << bit;
            if let Ok((h, s)) = open_delta(&bent) {
                assert_eq!(h, header, "corrupt byte {byte} bit {bit} changed header");
                assert_eq!(s.len(), sections.len());
            }
        }
    }

    // A backwards generation span is structurally invalid.
    let backwards = DeltaHeader {
        g_from: 9,
        g_to: 3,
        fingerprint: 1,
    };
    let mut bad = Vec::new();
    seal_delta_into(&backwards, &[], &mut bad);
    assert!(open_delta(&bad).is_err(), "g_from > g_to was accepted");
}

// ---------------------------------------------------------------------------
// Auth gate
// ---------------------------------------------------------------------------

fn expect_request_error<T: std::fmt::Debug>(result: Result<T, ClientError>, what: &str) {
    match result {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.kind, "request", "{what}: wrong error kind: {e}")
        }
        other => panic!("{what}: expected a request error, got {other:?}"),
    }
}

#[test]
fn auth_gates_both_transports() {
    let config = ServeConfig {
        auth_token: Some("sesame".to_string()),
        ..sketch_config()
    };
    let server = start(config, "127.0.0.1:0").expect("start");
    let addr = server.local_addr();

    for binary in [false, true] {
        let mut client = if binary {
            ServeClient::connect_binary(addr).expect("connect")
        } else {
            ServeClient::connect(addr).expect("connect")
        };
        let label = if binary { "binary" } else { "json" };

        // Everything except auth is refused before the handshake.
        expect_request_error(client.ping(), &format!("{label} unauthenticated ping"));
        expect_request_error(
            client.ingest(&[(1, 1)]),
            &format!("{label} unauthenticated ingest"),
        );
        expect_request_error(
            client.query_f2(10),
            &format!("{label} unauthenticated query"),
        );
        // A wrong token is refused and the connection stays gated.
        expect_request_error(client.auth("open"), &format!("{label} wrong token"));
        expect_request_error(client.ping(), &format!("{label} still gated"));
        // The right token opens the connection for every op.
        client.auth("sesame").expect("auth");
        client.ping().expect("authed ping");
        client.ingest(&[(1, 10), (2, 20)]).expect("authed ingest");
        client.flush().expect("authed flush");
        assert!(client.query_f2(Y_MAX).expect("authed query") > 0.0);
    }

    // The binary fast-path (no-ack pipelined ingest) is gated too: the
    // server drops unauthenticated fast-path batches and flags the
    // connection, so the next synchronous op reports the refusal.
    let mut sneaky = ServeClient::connect_binary(addr).expect("connect");
    sneaky.ingest_noack(&[(99, 1)]).expect("write side only");
    assert!(sneaky.sync().is_err(), "unauthenticated no-ack ingest was acked");

    // A server without a token accepts auth as a no-op.
    let open_server = start(sketch_config(), "127.0.0.1:0").expect("start");
    let mut open_client = ServeClient::connect(open_server.local_addr()).expect("connect");
    open_client.auth("anything").expect("no-op auth");
    open_client.ping().expect("ping");
    open_server.shutdown();
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Fan-in vs oracle
// ---------------------------------------------------------------------------

#[test]
fn fan_in_matches_single_server_oracle() {
    let agg = start_aggregator(sketch_config(), "127.0.0.1:0").expect("aggregator");
    let agg_addr = agg.local_addr().to_string();

    let node_a = start(node_config(&agg_addr, "a"), "127.0.0.1:0").expect("node a");
    let node_b = start(node_config(&agg_addr, "b"), "127.0.0.1:0").expect("node b");
    let oracle = start(sketch_config(), "127.0.0.1:0").expect("oracle");

    let mut ca = ServeClient::connect(node_a.local_addr()).expect("connect a");
    let mut cb = ServeClient::connect(node_b.local_addr()).expect("connect b");
    let mut co = ServeClient::connect(oracle.local_addr()).expect("connect oracle");

    // Several rounds with a sync barrier between them: the first shipped cut
    // is a full snapshot, later rounds exercise chained incremental deltas.
    for round in 0..3 {
        let a = tuples(round, 400);
        let b = tuples(round + 10, 400);
        ca.ingest(&a).expect("ingest a");
        cb.ingest(&b).expect("ingest b");
        co.ingest(&a).expect("oracle a");
        co.ingest(&b).expect("oracle b");
        ca.flush().expect("flush a");
        cb.flush().expect("flush b");
        sync_replication(&node_a);
        sync_replication(&node_b);
    }
    co.flush().expect("oracle flush");

    let mut cagg = ServeClient::connect(agg.local_addr()).expect("connect agg");
    let mut names = cagg.streams().expect("streams");
    names.sort();
    assert_eq!(names, vec!["a".to_string(), "b".to_string()]);

    // At this (pre-eviction) scale the merged union answers bit-identically
    // to the oracle that saw every tuple directly.
    assert_eq!(probe(&mut cagg), probe(&mut co));

    agg.shutdown();
    node_a.shutdown();
    node_b.shutdown();
    oracle.shutdown();
}

#[test]
fn set_expression_queries_match_inclusion_exclusion() {
    let agg = start_aggregator(sketch_config(), "127.0.0.1:0").expect("aggregator");
    let agg_addr = agg.local_addr().to_string();

    let node_a = start(node_config(&agg_addr, "a"), "127.0.0.1:0").expect("node a");
    let node_b = start(node_config(&agg_addr, "b"), "127.0.0.1:0").expect("node b");

    // Deliberate overlap: A covers x ∈ [0, 600), B covers x ∈ [300, 900).
    let a: Vec<(u64, u64)> = (0..600).map(|x| (x, (x * 31) % (Y_MAX + 1))).collect();
    let b: Vec<(u64, u64)> = (300..900).map(|x| (x, (x * 31) % (Y_MAX + 1))).collect();

    let mut ca = ServeClient::connect(node_a.local_addr()).expect("connect a");
    let mut cb = ServeClient::connect(node_b.local_addr()).expect("connect b");
    ca.ingest(&a).expect("ingest a");
    cb.ingest(&b).expect("ingest b");
    ca.flush().expect("flush a");
    cb.flush().expect("flush b");
    sync_replication(&node_a);
    sync_replication(&node_b);

    // Per-stream F0 oracles: single servers holding exactly A, B, and A∪B.
    let only = |tuples: &[Vec<(u64, u64)>]| -> RunningServer {
        let server = start(sketch_config(), "127.0.0.1:0").expect("oracle");
        let mut client = ServeClient::connect(server.local_addr()).expect("connect");
        for t in tuples {
            client.ingest(t).expect("ingest");
        }
        client.flush().expect("flush");
        server
    };
    let oa = only(std::slice::from_ref(&a));
    let ob = only(std::slice::from_ref(&b));
    let ou = only(&[a, b]);

    let mut cagg = ServeClient::connect(agg.local_addr()).expect("connect agg");
    let f0_of = |server: &RunningServer, c: u64| -> f64 {
        let mut client = ServeClient::connect(server.local_addr()).expect("connect oracle");
        client.query_f0(c).expect("oracle f0")
    };
    for c in [Y_MAX / 3, Y_MAX] {
        let fa = f0_of(&oa, c);
        let fb = f0_of(&ob, c);
        let fu = f0_of(&ou, c);

        let union = cagg.set_f0("a", "b", SetOp::Union, c).expect("union");
        let intersect = cagg.set_f0("a", "b", SetOp::Intersect, c).expect("intersect");
        let diff = cagg.set_f0("a", "b", SetOp::Diff, c).expect("diff");

        // The union estimate IS the merged sketch's estimate — at this
        // pre-eviction scale bit-identical to the oracle; the others follow
        // inclusion–exclusion over the per-stream estimates, clamped at
        // zero.
        assert_eq!(union, fu, "c={c}");
        assert_eq!(intersect, (fa + fb - fu).max(0.0), "c={c}");
        assert_eq!(diff, (fa - (fa + fb - fu).max(0.0)).max(0.0), "c={c}");
        // Sanity on the semantics themselves, not just the arithmetic.
        assert!(intersect >= 0.0 && diff >= 0.0);
        assert!(union <= fa + fb + 1e-9);
    }

    // Unknown streams and bad ops are structured request errors.
    expect_request_error(
        cagg.set_f0("a", "nope", SetOp::Union, Y_MAX),
        "unknown stream",
    );

    agg.shutdown();
    node_a.shutdown();
    node_b.shutdown();
    oa.shutdown();
    ob.shutdown();
    ou.shutdown();
}

// ---------------------------------------------------------------------------
// Link failure mid-delta
// ---------------------------------------------------------------------------

/// A byte-forwarding TCP proxy that deliberately drops its first `kills`
/// upstream connections after forwarding a token amount of traffic — the
/// replica link dies mid-frame, not at a tidy boundary.
fn lossy_proxy(target: String, kills: u32) -> (String, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("proxy bind");
    let addr = listener.local_addr().expect("proxy addr").to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    let remaining = Arc::new(AtomicU32::new(kills));
    std::thread::spawn(move || {
        listener
            .set_nonblocking(true)
            .expect("nonblocking accept");
        while !stop_accept.load(Ordering::Relaxed) {
            let (client, _) = match listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(_) => return,
            };
            let Ok(server) = TcpStream::connect(&target) else {
                continue;
            };
            // Kill this connection after ~256 forwarded upstream bytes —
            // inside the first delta frame, past the handshake.
            let cut_after = if remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
            {
                Some(256usize)
            } else {
                None
            };
            let pump = |mut from: TcpStream, mut to: TcpStream, budget: Option<usize>| {
                std::thread::spawn(move || {
                    let mut sent = 0usize;
                    let mut buf = [0u8; 512];
                    loop {
                        let n = match from.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => n,
                        };
                        if let Some(limit) = budget {
                            if sent + n > limit {
                                // Drop both directions: shutdown kills the
                                // paired pump's socket too.
                                let _ = from.shutdown(std::net::Shutdown::Both);
                                let _ = to.shutdown(std::net::Shutdown::Both);
                                break;
                            }
                        }
                        sent += n;
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            };
            let (c2, s2) = (
                client.try_clone().expect("clone"),
                server.try_clone().expect("clone"),
            );
            pump(client, server, cut_after);
            pump(s2, c2, None);
        }
    });
    (addr, stop)
}

#[test]
fn link_kill_mid_delta_converges_bit_identically() {
    let agg = start_aggregator(sketch_config(), "127.0.0.1:0").expect("aggregator");
    let (proxy_addr, proxy_stop) = lossy_proxy(agg.local_addr().to_string(), 2);

    let node = start(node_config(&proxy_addr, "a"), "127.0.0.1:0").expect("node");
    let oracle = start(sketch_config(), "127.0.0.1:0").expect("oracle");
    let mut cn = ServeClient::connect(node.local_addr()).expect("connect node");
    let mut co = ServeClient::connect(oracle.local_addr()).expect("connect oracle");

    for round in 0..4 {
        let batch = tuples(round, 500);
        cn.ingest(&batch).expect("ingest");
        co.ingest(&batch).expect("oracle ingest");
    }
    cn.flush().expect("flush");
    co.flush().expect("oracle flush");

    // The first two replica connections die mid-frame; the replicator must
    // reconnect, resync the chain, and land on exactly the oracle's state.
    sync_replication(&node);

    let mut cagg = ServeClient::connect(agg.local_addr()).expect("connect agg");
    assert_eq!(probe(&mut cagg), probe(&mut co));

    // The aggregator survived the broken frames without inventing streams.
    assert_eq!(cagg.streams().expect("streams"), vec!["a".to_string()]);

    proxy_stop.store(true, Ordering::Relaxed);
    agg.shutdown();
    node.shutdown();
    oracle.shutdown();
}

// ---------------------------------------------------------------------------
// Warm standby
// ---------------------------------------------------------------------------

#[test]
fn warm_standby_seeds_from_durable_dir_and_resyncs_without_double_count() {
    let dir = temp_dir("standby");
    let durable = ServeConfig {
        durability: Some(DurabilityConfig {
            dir: dir.clone(),
            snapshot_every_tuples: 0,
            snapshot_interval_ms: 0,
            fsync_each_batch: true,
        }),
        ..sketch_config()
    };

    let batch = tuples(3, 800);
    let node = start(durable.clone(), "127.0.0.1:0").expect("durable node");
    let mut cn = ServeClient::connect(node.local_addr()).expect("connect");
    cn.ingest(&batch).expect("ingest");
    cn.flush().expect("flush");
    cn.snapshot_rotate().expect("rotate");
    cn.ingest(&tuples(4, 200)).expect("ingest tail");
    cn.flush().expect("flush tail");
    node.shutdown(); // upstream dies; its directory is all that survives

    // The aggregator warm-starts stream "a" from the dead upstream's
    // directory: newest snapshot plus journal tail, same recovery path the
    // node itself would take.
    let agg = start_aggregator_seeded(sketch_config(), "127.0.0.1:0", &[("a", dir.as_path())])
        .expect("seeded aggregator");
    let oracle = start(sketch_config(), "127.0.0.1:0").expect("oracle");
    let mut co = ServeClient::connect(oracle.local_addr()).expect("connect oracle");
    co.ingest(&batch).expect("oracle ingest");
    co.ingest(&tuples(4, 200)).expect("oracle tail");
    co.flush().expect("oracle flush");

    let mut cagg = ServeClient::connect(agg.local_addr()).expect("connect agg");
    assert_eq!(probe(&mut cagg), probe(&mut co));

    // The upstream comes back (restored from the same directory) and
    // reconnects. Its replicator must full-resync over the seeded state —
    // replacing it, not merging into it — so nothing is double counted.
    let revived = start(
        ServeConfig {
            replicate: Some(ReplicateConfig {
                interval_ms: 20,
                ..ReplicateConfig::new(agg.local_addr().to_string(), "a")
            }),
            ..durable
        },
        "127.0.0.1:0",
    )
    .expect("revived node");
    let mut cr = ServeClient::connect(revived.local_addr()).expect("connect revived");
    let extra = tuples(5, 300);
    cr.ingest(&extra).expect("ingest extra");
    cr.flush().expect("flush extra");
    sync_replication(&revived);

    co.ingest(&extra).expect("oracle extra");
    co.flush().expect("oracle flush");
    assert_eq!(probe(&mut cagg), probe(&mut co));

    agg.shutdown();
    revived.shutdown();
    oracle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Client connect timeout
// ---------------------------------------------------------------------------

#[test]
fn connect_timeout_fails_fast_on_unroutable_address() {
    // RFC 5737 TEST-NET-1 is unroutable on the open internet; without the
    // timeout the OS-level connect can take minutes to give up. Sandboxed
    // environments may intercept the connect and answer instantly — the
    // invariant under test is the time bound, which must hold either way.
    let started = Instant::now();
    let result = ServeClient::connect_binary_timeout("192.0.2.1:9", Duration::from_millis(250));
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "connect_timeout did not bound the connect: {elapsed:?}"
    );
    if result.is_ok() {
        eprintln!("note: network sandbox answered for TEST-NET-1; only the time bound was checked");
    }
}
