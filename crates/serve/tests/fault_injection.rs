//! Deterministic fault-injection tests for the durability layer.
//!
//! Every test runs a real server over a [`FaultyStorage`] whose counted
//! triggers fail exact operations — the Nth journal append (optionally
//! tearing the record first), the Nth snapshot publish, every snapshot
//! read — and then asserts *specific* recovery outcomes: structured `io`
//! errors on both transports, a poisoned journal healed by rotation,
//! valid-prefix replay past a torn tail, and fallback to the previous
//! snapshot generation. The oracle throughout is an uninterrupted
//! in-memory server fed the same acked batches: recovery must answer
//! bit-identically to it.

use cora_serve::client::{ClientError, ServeClient};
use cora_serve::server::{start, start_with_storage, DurabilityConfig, ServeConfig};
use cora_serve::{DiskStorage, FaultPlan, FaultyStorage};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn sketch_config() -> ServeConfig {
    ServeConfig {
        epsilon: 0.25,
        delta: 0.1,
        y_max: 1023,
        max_stream_len: 100_000,
        seed: 11,
        shards: 2,
        merge_every: 1,
        x_domain_log2: 16,
        pane_ticks: 64,
        ..ServeConfig::default()
    }
}

/// The durable variant: same sketches, journal in `dir`, automatic
/// triggers off so every rotation in a test is an explicit `snapshot` op.
fn durable_config(dir: &Path) -> ServeConfig {
    ServeConfig {
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            snapshot_every_tuples: 0,
            snapshot_interval_ms: 0,
            fsync_each_batch: true,
        }),
        ..sketch_config()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cora_fault_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn faulty() -> Arc<FaultyStorage> {
    Arc::new(FaultyStorage::new(Arc::new(DiskStorage)))
}

fn batch(lo: u64, n: u64) -> Vec<(u64, u64)> {
    (lo..lo + n).map(|i| (i % 97, (i * 7) % 1024)).collect()
}

/// Assert `err` is a structured server-side `io` error.
fn assert_io_error(err: ClientError, context: &str) {
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.kind, "io", "{context}: wrong kind in {e}");
            assert!(e.message.contains("injected fault"), "{context}: {e}");
        }
        other => panic!("{context}: expected a server io error, got {other:?}"),
    }
}

/// Every f2/f0/rarity answer of `a` must equal `b`'s bit-for-bit.
fn assert_same_answers(a: &mut ServeClient, b: &mut ServeClient) {
    a.flush().unwrap();
    b.flush().unwrap();
    for c in [0, 1, 100, 500, 1023] {
        assert_eq!(a.query_f2(c).unwrap().to_bits(), b.query_f2(c).unwrap().to_bits(), "f2@{c}");
        assert_eq!(a.query_f0(c).unwrap().to_bits(), b.query_f0(c).unwrap().to_bits(), "f0@{c}");
        assert_eq!(
            a.query_rarity(c).unwrap().to_bits(),
            b.query_rarity(c).unwrap().to_bits(),
            "rarity@{c}"
        );
    }
    let ia = a.stats().unwrap().u64_field("items_accepted").unwrap();
    let ib = b.stats().unwrap().u64_field("items_accepted").unwrap();
    assert_eq!(ia, ib, "accepted item counts diverge");
}

#[test]
fn append_failure_is_a_structured_io_error_and_rotation_heals() {
    let dir = temp_dir("append_fail");
    let storage = faulty();
    let server = start_with_storage(durable_config(&dir), "127.0.0.1:0", storage.clone()).unwrap();
    let mut bin = ServeClient::connect_binary(server.local_addr()).unwrap();
    let mut json = ServeClient::connect(server.local_addr()).unwrap();

    assert_eq!(bin.ingest(&batch(0, 50)).unwrap(), 50);

    // The next journal append fails: the batch must be refused with an `io`
    // error, not applied, and the journal poisoned.
    storage.set_plan(FaultPlan { fail_append_at: Some(1), ..FaultPlan::default() });
    assert_io_error(bin.ingest(&batch(50, 50)).unwrap_err(), "binary ingest");
    storage.clear();

    let stats = bin.stats().unwrap();
    assert_eq!(stats.u64_field("journal_poisoned").unwrap(), 1);
    assert_eq!(stats.u64_field("items_accepted").unwrap(), 50);

    // Poisoned journal: even fault-free appends are refused until a
    // rotation replaces the file (no silent gap in the journal).
    match bin.ingest(&batch(50, 50)).unwrap_err() {
        ClientError::Server(e) => {
            assert_eq!(e.kind, "io");
            assert!(e.message.contains("poisoned"), "{e}");
        }
        other => panic!("expected poisoned-journal error, got {other:?}"),
    }

    let generation = bin.snapshot_rotate().unwrap();
    assert!(generation >= 1);
    let stats = bin.stats().unwrap();
    assert_eq!(stats.u64_field("journal_poisoned").unwrap(), 0);

    // Same failure over the JSON transport: identical structured error.
    storage.set_plan(FaultPlan { fail_append_at: Some(1), ..FaultPlan::default() });
    assert_io_error(json.ingest(&batch(50, 50)).unwrap_err(), "json ingest");
    storage.clear();
    bin.snapshot_rotate().unwrap();

    assert_eq!(bin.ingest(&batch(50, 50)).unwrap(), 50);

    drop(bin);
    drop(json);
    server.shutdown();

    // Restart: exactly the acked batches survive.
    let reference = start(sketch_config(), "127.0.0.1:0").unwrap();
    let mut oracle = ServeClient::connect_binary(reference.local_addr()).unwrap();
    oracle.ingest(&batch(0, 50)).unwrap();
    oracle.ingest(&batch(50, 50)).unwrap();
    let restarted = start(durable_config(&dir), "127.0.0.1:0").unwrap();
    let mut recovered = ServeClient::connect_binary(restarted.local_addr()).unwrap();
    assert_same_answers(&mut recovered, &mut oracle);

    restarted.shutdown();
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_is_dropped_on_recovery() {
    let dir = temp_dir("torn_tail");
    let storage = faulty();
    let server = start_with_storage(durable_config(&dir), "127.0.0.1:0", storage.clone()).unwrap();
    let mut client = ServeClient::connect_binary(server.local_addr()).unwrap();
    for i in 0..3 {
        client.ingest(&batch(i * 40, 40)).unwrap();
    }

    // The fourth batch tears mid-record — a crash inside `write(2)`. The
    // client sees an error, so the batch was never acked.
    storage.set_plan(FaultPlan {
        fail_append_at: Some(1),
        torn_append: true,
        ..FaultPlan::default()
    });
    assert_io_error(client.ingest(&batch(120, 40)).unwrap_err(), "torn ingest");
    storage.clear();
    drop(client);
    server.shutdown();

    // Recovery replays the valid prefix: three batches, no partial fourth.
    let reference = start(sketch_config(), "127.0.0.1:0").unwrap();
    let mut oracle = ServeClient::connect_binary(reference.local_addr()).unwrap();
    for i in 0..3 {
        oracle.ingest(&batch(i * 40, 40)).unwrap();
    }
    let restarted = start(durable_config(&dir), "127.0.0.1:0").unwrap();
    let mut recovered = ServeClient::connect_binary(restarted.local_addr()).unwrap();
    assert_same_answers(&mut recovered, &mut oracle);

    restarted.shutdown();
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_publish_failure_is_reported_and_server_continues() {
    let dir = temp_dir("snap_fail");
    let storage = faulty();
    let server = start_with_storage(durable_config(&dir), "127.0.0.1:0", storage.clone()).unwrap();
    let mut client = ServeClient::connect_binary(server.local_addr()).unwrap();
    client.ingest(&batch(0, 60)).unwrap();

    storage.set_plan(FaultPlan { fail_write_atomic_at: Some(1), ..FaultPlan::default() });
    assert_io_error(client.snapshot_rotate().unwrap_err(), "snapshot rotation");
    storage.clear();

    // The failed rotation is counted, the journal is intact, and a retry
    // succeeds.
    let stats = client.stats().unwrap();
    assert!(stats.u64_field("snapshot_errors").unwrap() >= 1);
    assert_eq!(stats.u64_field("journal_poisoned").unwrap(), 0);
    client.ingest(&batch(60, 60)).unwrap();
    let generation = client.snapshot_rotate().unwrap();
    assert!(generation >= 1);

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovery falls back past an unreadable newest snapshot (modeled by a
/// short read) to the previous generation, and the journal chain replays
/// the difference — answers stay bit-identical.
#[test]
fn short_read_snapshot_falls_back_to_previous_generation() {
    let dir = temp_dir("short_read");
    let reference = start(sketch_config(), "127.0.0.1:0").unwrap();
    let mut oracle = ServeClient::connect_binary(reference.local_addr()).unwrap();
    {
        let server = start(durable_config(&dir), "127.0.0.1:0").unwrap();
        let mut client = ServeClient::connect_binary(server.local_addr()).unwrap();
        for i in 0..2 {
            client.ingest(&batch(i * 30, 30)).unwrap();
            oracle.ingest(&batch(i * 30, 30)).unwrap();
        }
        let first = client.snapshot_rotate().unwrap();
        client.ingest(&batch(60, 30)).unwrap();
        oracle.ingest(&batch(60, 30)).unwrap();
        let second = client.snapshot_rotate().unwrap();
        assert!(second > first);
        client.ingest(&batch(90, 30)).unwrap();
        oracle.ingest(&batch(90, 30)).unwrap();
        drop(client);
        server.shutdown();
    }

    // Every read of the newest snapshot comes back truncated; older
    // generations read fine. Recovery must not refuse — the previous
    // snapshot plus the journals at and above its generation reconstruct
    // everything.
    let storage = faulty();
    let newest = {
        let mut gens: Vec<u64> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().into_string().unwrap();
                name.strip_prefix("snap-")?.strip_suffix(".csrv")?.parse().ok()
            })
            .collect();
        gens.sort_unstable();
        *gens.last().expect("at least one snapshot on disk")
    };
    storage.set_plan(FaultPlan {
        short_read: Some((format!("snap-{newest}"), 16)),
        ..FaultPlan::default()
    });
    let restarted =
        start_with_storage(durable_config(&dir), "127.0.0.1:0", storage.clone()).unwrap();
    let mut recovered = ServeClient::connect_binary(restarted.local_addr()).unwrap();
    assert_same_answers(&mut recovered, &mut oracle);

    restarted.shutdown();
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole property end to end: kill nothing, inject nothing — just
/// restart — and the recovered server answers every query bit-identically
/// to an uninterrupted reference, including heavy hitters and windowed
/// state carried through snapshot + journal replay.
#[test]
fn recovery_is_bit_identical_to_uninterrupted_reference() {
    let dir = temp_dir("bit_identical");
    let reference = start(sketch_config(), "127.0.0.1:0").unwrap();
    let mut oracle = ServeClient::connect_binary(reference.local_addr()).unwrap();
    {
        let server = start(durable_config(&dir), "127.0.0.1:0").unwrap();
        let mut client = ServeClient::connect_binary(server.local_addr()).unwrap();
        for i in 0..8 {
            client.ingest(&batch(i * 25, 25)).unwrap();
            oracle.ingest(&batch(i * 25, 25)).unwrap();
            if i == 3 {
                client.snapshot_rotate().unwrap();
            }
        }
        drop(client);
        server.shutdown();
    }

    let restarted = start(durable_config(&dir), "127.0.0.1:0").unwrap();
    let mut recovered = ServeClient::connect_binary(restarted.local_addr()).unwrap();
    assert_same_answers(&mut recovered, &mut oracle);
    let hh_a = recovered.query_heavy_hitters(100, 0.05).unwrap();
    let hh_b = oracle.query_heavy_hitters(100, 0.05).unwrap();
    assert_eq!(hh_a.len(), hh_b.len(), "heavy-hitter reports diverge");

    // The recovered server is fully live: it keeps accepting and stays
    // durable across yet another restart.
    assert_eq!(recovered.ingest(&batch(200, 25)).unwrap(), 25);
    oracle.ingest(&batch(200, 25)).unwrap();
    drop(recovered);
    restarted.shutdown();
    let second = start(durable_config(&dir), "127.0.0.1:0").unwrap();
    let mut recovered = ServeClient::connect_binary(second.local_addr()).unwrap();
    assert_same_answers(&mut recovered, &mut oracle);

    second.shutdown();
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
