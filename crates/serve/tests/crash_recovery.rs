//! Process-level crash recovery: a real `cora_serve_node` child gets
//! `SIGKILL`ed mid-pipelined-train and restarted on the same durable
//! directory. The [`RetryingClient`] must report the broken connection,
//! reconnect, and replay its unsynced sequence-tagged batches — after which
//! the recovered server holds **exactly** the batches the client sent: none
//! lost (the journal keeps everything acked), none duplicated (the server's
//! per-writer sequence map absorbs the blanket resend).
//!
//! The oracle is an in-process server with the node's fixed sketch
//! configuration fed the same batches uninterrupted.

use cora_serve::client::{ClientError, ServeClient};
use cora_serve::retry::{RetryPolicy, RetryingClient};
use cora_serve::server::{start, ServeConfig};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// The fixed configuration `cora_serve_node` serves under (both sides of a
/// kill/restart cycle must agree on it; see the binary's docs).
fn node_config() -> ServeConfig {
    ServeConfig {
        epsilon: 0.25,
        delta: 0.1,
        y_max: 4095,
        max_stream_len: 1_000_000,
        seed: 7,
        shards: 2,
        merge_every: 1,
        x_domain_log2: 16,
        pane_ticks: 256,
        ..ServeConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cora_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawn the durable node on `dir` and block until it prints its address.
fn spawn_node(dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cora_serve_node"))
        .args(["--dir", dir.to_str().unwrap(), "--bind", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn cora_serve_node");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read LISTENING line");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .to_string();
    (child, addr)
}

fn batch(lo: u64, n: u64) -> Vec<(u64, u64)> {
    (lo..lo + n).map(|i| (i % 211, (i * 13) % 4096)).collect()
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 3,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(20),
        connect_timeout: Duration::from_secs(5),
    }
}

#[test]
fn sigkill_mid_train_loses_nothing_and_duplicates_nothing() {
    let dir = temp_dir("mid_train");
    let (mut child, addr) = spawn_node(&dir);
    let reference = start(node_config(), "127.0.0.1:0").unwrap();
    let mut oracle = ServeClient::connect_binary(reference.local_addr()).unwrap();

    let mut client = RetryingClient::connect_with(&addr, 1, fast_policy()).unwrap();
    let mut sent = Vec::new();

    // First train: pipelined, then synced — every batch is acked-durable.
    for i in 0..5u64 {
        let b = batch(i * 100, 100);
        client.ingest_noack(&b).unwrap();
        sent.push(b);
    }
    client.sync().unwrap();
    assert_eq!(client.pending_batches(), 0);

    // Second train: pipelined but NOT synced, then SIGKILL mid-flight. The
    // server may have journaled any prefix of it — the client cannot know.
    for i in 5..10u64 {
        let b = batch(i * 100, 100);
        client.ingest_noack(&b).unwrap();
        sent.push(b);
    }
    child.kill().expect("SIGKILL the node");
    child.wait().expect("reap the node");

    // With the server gone, sync must report the broken connection (an
    // Io/Timeout-class error), keeping the unsynced batches buffered.
    let err = client.sync().expect_err("sync against a dead server");
    assert!(
        matches!(err, ClientError::Io(_) | ClientError::Timeout(_)),
        "expected a connection error, got {err:?}"
    );
    assert_eq!(client.pending_batches(), 5);

    // Restart on the same directory; the client re-targets, reconnects, and
    // replays the whole unsynced train.
    let (restarted, new_addr) = spawn_node(&dir);
    client.set_target(&new_addr);
    let resent = client.sync().expect("sync after restart");
    assert_eq!(resent, 5, "the whole unsynced train is replayed");
    assert_eq!(client.pending_batches(), 0);

    // Exactly-once: the recovered server answers bit-identically to the
    // uninterrupted oracle over the full send history.
    for b in &sent {
        oracle.ingest(b).unwrap();
    }
    client.flush().unwrap();
    oracle.flush().unwrap();
    let total: u64 = sent.iter().map(|b| b.len() as u64).sum();
    let stats = client.stats().unwrap();
    assert_eq!(stats.u64_field("items_accepted").unwrap(), total, "lost or duplicated tuples");
    assert_eq!(stats.u64_field("durable").unwrap(), 1);
    for c in [0, 64, 512, 4095] {
        assert_eq!(
            client.query_f2(c).unwrap().to_bits(),
            oracle.query_f2(c).unwrap().to_bits(),
            "f2@{c} diverges after recovery"
        );
    }

    client.shutdown_server().ok();
    let _ = restarted.wait_with_output();
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A double-resend cannot double-count: replaying an already-synced train
/// (as a reconnecting client with stale state would) yields duplicate acks,
/// not inflated aggregates.
#[test]
fn replayed_acked_batches_are_deduplicated_across_restart() {
    let dir = temp_dir("dedupe");
    let (mut child, addr) = spawn_node(&dir);

    let mut client = ServeClient::connect_binary(&*addr).unwrap();
    let b = batch(0, 80);
    assert_eq!(client.ingest_seq(&b, Some((9, 1))).unwrap(), 80);
    assert_eq!(client.ingest_seq(&b, Some((9, 1))).unwrap(), 0, "duplicate applied twice");
    let before = {
        client.flush().unwrap();
        client.stats().unwrap().u64_field("items_accepted").unwrap()
    };
    assert_eq!(before, 80);

    child.kill().expect("SIGKILL the node");
    child.wait().expect("reap the node");

    // The sequence map survives the crash (it is journaled with the
    // batches): the same replay after restart is still a duplicate.
    let (restarted, new_addr) = spawn_node(&dir);
    let mut client = ServeClient::connect_binary(&*new_addr).unwrap();
    assert_eq!(client.ingest_seq(&b, Some((9, 1))).unwrap(), 0, "dedupe lost across restart");
    client.flush().unwrap();
    let after = client.stats().unwrap().u64_field("items_accepted").unwrap();
    assert_eq!(after, 80);

    client.shutdown_server().ok();
    let _ = restarted.wait_with_output();
    let _ = std::fs::remove_dir_all(&dir);
}
