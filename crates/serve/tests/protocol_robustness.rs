//! Fuzz-ish robustness tests for both wire protocols, plus the
//! pipelined-ingest equivalence property.
//!
//! The contract under test: whatever bytes a client sends — random garbage,
//! truncated frames, lying length prefixes, unknown opcodes — the server
//! never panics or wedges, keeps already-open connections working, and
//! keeps accepting new ones. And the binary transport is *semantically
//! invisible*: N pipelined no-ack batches produce bit-identical answers to
//! the same batches ingested sequentially over JSON.

use cora_serve::client::{ClientError, ServeClient};
use cora_serve::server::{start, RunningServer, ServeConfig};
use cora_serve::wire;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

fn test_config() -> ServeConfig {
    ServeConfig {
        epsilon: 0.25,
        delta: 0.1,
        y_max: 1023,
        max_stream_len: 100_000,
        seed: 11,
        shards: 2,
        merge_every: 1,
        phi: 0.1,
        x_domain_log2: 16,
        pane_ticks: 64,
        pane_k: 4,
        pane_retention: None,
        max_connections: 1_024,
        durability: None,
        auth_token: None,
        replicate: None,
    }
}

/// A raw socket with a read timeout, so a wedged server fails the test
/// instead of hanging it.
fn connect_raw(server: &RunningServer) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// Write `bytes`, half-close, and drain whatever the server answers. The
/// content is irrelevant — the property is that this returns (the server
/// closed the connection or answered) instead of panicking or hanging.
fn poke(server: &RunningServer, bytes: &[u8]) {
    let mut stream = connect_raw(server);
    // The server may close mid-write on garbage; broken pipes are expected.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    let mut sink = Vec::new();
    let _ = stream.read_to_end(&mut sink);
}

/// The liveness probe run after every hostile connection: a fresh client
/// must still be able to ingest and query.
fn assert_server_alive(server: &RunningServer) {
    let mut client = ServeClient::connect(server.local_addr()).expect("connect after garbage");
    client.ping().expect("ping after garbage");
    assert_eq!(client.ingest(&[(1, 1)]).expect("ingest after garbage"), 1);
    let mut binary =
        ServeClient::connect_binary(server.local_addr()).expect("binary connect after garbage");
    assert!(binary.query_f2(1023).expect("query after garbage") >= 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn random_garbage_never_kills_the_server(
        blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..200), 8..13),
    ) {
        let server = start(test_config(), "127.0.0.1:0").unwrap();
        for blob in &blobs {
            poke(&server, blob);
        }
        // Garbage that happens to start with the magic byte exercises the
        // binary header validation; force a few of those too.
        for blob in &blobs {
            let mut framed = vec![wire::MAGIC];
            framed.extend_from_slice(blob);
            poke(&server, &framed);
        }
        assert_server_alive(&server);
        server.shutdown();
    }

    #[test]
    fn truncated_frames_never_kill_the_server(
        cuts in prop::collection::vec(any::<u16>(), 6..10),
    ) {
        let server = start(test_config(), "127.0.0.1:0").unwrap();
        let tuples: Vec<(u64, u64)> = (0..50).map(|i| (i, i % 1024)).collect();
        let frames = [
            wire::encode_ingest(&tuples, None, None, 0),
            wire::encode_ingest(&tuples, None, Some((1, 1)), wire::FLAG_NO_ACK),
            wire::encode_request(&cora_serve::protocol::Request::QueryHeavyHitters {
                c: 10,
                phi: 0.5,
            }, 0),
            wire::encode_request(&cora_serve::protocol::Request::Snapshot {
                path: "/tmp/never-written.snap".to_string(),
            }, 0),
        ];
        for (i, &cut) in cuts.iter().enumerate() {
            let frame = &frames[i % frames.len()];
            let cut = cut as usize % frame.len();
            poke(&server, &frame[..cut]);
        }
        assert_server_alive(&server);
        server.shutdown();
    }
}

#[test]
fn oversized_declared_length_is_rejected_before_buffering() {
    let server = start(test_config(), "127.0.0.1:0").unwrap();
    let mut stream = connect_raw(&server);
    // A well-formed header whose length field exceeds the frame cap. The
    // server must answer with an ERROR frame and close — without ever
    // allocating or waiting for the phantom gigabyte.
    let mut header = vec![wire::MAGIC, wire::VERSION, 0x01, 0];
    header.extend_from_slice(&(u32::MAX).to_le_bytes());
    stream.write_all(&header).unwrap();
    let mut reply_header = [0u8; wire::HEADER_BYTES];
    stream.read_exact(&mut reply_header).expect("error frame header");
    let parsed = wire::parse_header(&reply_header).expect("valid reply header");
    assert_eq!(parsed.flags & wire::FLAG_ERROR, wire::FLAG_ERROR);
    let mut payload = vec![0u8; parsed.len];
    stream.read_exact(&mut payload).expect("error frame payload");
    match wire::decode_reply(parsed.flags, &payload).expect("decodable reply") {
        wire::DecodedReply::Error { kind, message } => {
            assert!(message.contains("cap"), "unexpected message: {message}");
            assert_eq!(kind, "request");
        }
        other => panic!("expected an error reply, got {other:?}"),
    }
    // The connection is closed after a framing-level failure.
    let mut rest = Vec::new();
    let n = stream.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "connection should be closed after a bad header");
    assert_server_alive(&server);
    server.shutdown();
}

#[test]
fn unknown_opcode_keeps_the_connection_usable() {
    let server = start(test_config(), "127.0.0.1:0").unwrap();
    let mut stream = connect_raw(&server);
    // Unknown opcode in a well-formed frame: an error reply, and the same
    // connection must keep answering well-formed requests.
    let mut bad = vec![wire::MAGIC, wire::VERSION, 0x7F, 0];
    bad.extend_from_slice(&0u32.to_le_bytes());
    stream.write_all(&bad).unwrap();
    let mut reply_header = [0u8; wire::HEADER_BYTES];
    stream.read_exact(&mut reply_header).expect("error frame header");
    let parsed = wire::parse_header(&reply_header).expect("valid reply header");
    assert_eq!(parsed.flags & wire::FLAG_ERROR, wire::FLAG_ERROR);
    let mut payload = vec![0u8; parsed.len];
    stream.read_exact(&mut payload).expect("error frame payload");

    // Now a valid ping on the *same* connection.
    stream
        .write_all(&wire::encode_request(&cora_serve::protocol::Request::Ping, 0))
        .unwrap();
    stream.read_exact(&mut reply_header).expect("pong header");
    let parsed = wire::parse_header(&reply_header).expect("valid pong header");
    assert_eq!(parsed.opcode, wire::Opcode::Ping as u8);
    assert_eq!(parsed.flags & wire::FLAG_ERROR, 0);
    let mut payload = vec![0u8; parsed.len];
    stream.read_exact(&mut payload).expect("pong payload");
    server.shutdown();
}

#[test]
fn first_byte_sniffing_routes_whitespace_json_and_rejects_junk() {
    let server = start(test_config(), "127.0.0.1:0").unwrap();

    // Leading whitespace before a JSON request is tolerated by the sniffer.
    let mut stream = connect_raw(&server);
    stream.write_all(b"  \t {\"op\":\"ping\"}\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "got: {line}");

    // A first byte that is neither whitespace, '{', nor the magic gets one
    // JSON error line, then the connection closes.
    let mut stream = connect_raw(&server);
    stream.write_all(b"[1,2,3]\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":false"), "got: {line}");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection stays open");

    // A garbage JSON line gets an error response and the connection lives.
    let mut stream = connect_raw(&server);
    stream.write_all(b"{\"op\":\"nonsense\"}\n{\"op\":\"ping\"}\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":false"), "got: {line}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "got: {line}");
    server.shutdown();
}

/// The headline equivalence property: N pipelined no-ack binary batches ≡
/// the same N batches ingested sequentially over JSON, down to the last
/// bit, observed through both transports.
#[test]
fn pipelined_binary_ingest_matches_sequential_json() {
    let json_server = start(test_config(), "127.0.0.1:0").unwrap();
    let binary_server = start(test_config(), "127.0.0.1:0").unwrap();

    let tuples: Vec<(u64, u64)> = (0..12_000u64)
        .map(|i| ((i * 7) % 900, (i * 131) % 1024))
        .collect();

    let mut json_client = ServeClient::connect(json_server.local_addr()).unwrap();
    for chunk in tuples.chunks(500) {
        assert_eq!(json_client.ingest(chunk).unwrap(), chunk.len() as u64);
    }
    json_client.flush().unwrap();

    let mut binary_client = ServeClient::connect_binary(binary_server.local_addr()).unwrap();
    assert!(binary_client.is_binary());
    binary_client.ingest_pipelined(&tuples, 500).unwrap();
    binary_client.flush().unwrap();

    let thresholds: Vec<u64> = (0..=1024).step_by(128).collect();
    // A second pair of eyes on the binary-ingested server: the JSON
    // transport must render the very same answers.
    let mut json_on_binary = ServeClient::connect(binary_server.local_addr()).unwrap();
    for &c in &thresholds {
        let f2 = json_client.query_f2(c).unwrap();
        assert_eq!(binary_client.query_f2(c).unwrap(), f2, "f2 at c={c}");
        assert_eq!(json_on_binary.query_f2(c).unwrap(), f2, "f2 via json at c={c}");
        let f0 = json_client.query_f0(c).unwrap();
        assert_eq!(binary_client.query_f0(c).unwrap(), f0, "f0 at c={c}");
        let rarity = json_client.query_rarity(c).unwrap();
        assert_eq!(binary_client.query_rarity(c).unwrap(), rarity, "rarity at c={c}");
    }
    assert_eq!(
        binary_client.query_heavy_hitters(1023, 0.2).unwrap(),
        json_client.query_heavy_hitters(1023, 0.2).unwrap(),
    );
    for window in [64u64, 512, 1 << 20] {
        assert_eq!(
            binary_client.query_window_f2(window, 1024).unwrap(),
            json_client.query_window_f2(window, 1024).unwrap(),
            "window f2 w={window}"
        );
        assert_eq!(
            binary_client.query_window_f0(window, 1024).unwrap(),
            json_client.query_window_f0(window, 1024).unwrap(),
            "window f0 w={window}"
        );
    }
    let stats = binary_client.stats().unwrap();
    assert_eq!(stats.u64_field("items_accepted").unwrap(), tuples.len() as u64);

    // A rejected batch inside the pipe surfaces at the sync point, and the
    // connection keeps working afterwards.
    binary_client.ingest_noack(&[(1, 1)]).unwrap();
    binary_client.ingest_noack(&[(2, 1_000_000)]).unwrap(); // y out of range
    binary_client.ingest_noack(&[(3, 2)]).unwrap();
    let err = binary_client.sync().unwrap_err();
    assert!(matches!(err, ClientError::Server(_)), "{err}");
    binary_client.ping().unwrap();
    binary_client.flush().unwrap();
    // The two good batches around the bad one were still accepted.
    let stats = binary_client.stats().unwrap();
    assert_eq!(
        stats.u64_field("items_accepted").unwrap(),
        tuples.len() as u64 + 2
    );

    json_server.shutdown();
    binary_server.shutdown();
}

#[test]
fn connection_limit_refuses_with_an_error_line() {
    let mut config = test_config();
    config.max_connections = 2;
    let server = start(config, "127.0.0.1:0").unwrap();

    let mut a = ServeClient::connect(server.local_addr()).unwrap();
    let mut b = ServeClient::connect_binary(server.local_addr()).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();

    // The third connection is answered with one error line and closed.
    let stream = connect_raw(&server);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("refusal line");
    assert!(line.contains("connection limit"), "got: {line}");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "refused conn stays open");

    // Freeing a slot lets new connections in (the worker notices the close
    // on its next sweep, so poll briefly).
    drop(a);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let admitted = loop {
        let mut c = ServeClient::connect(server.local_addr()).unwrap();
        if c.ping().is_ok() {
            break true;
        }
        if std::time::Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(admitted, "slot was never reclaimed after dropping a client");
    b.ping().unwrap();
    server.shutdown();
}

/// A stalled server (accepts, never answers) must fail the request with
/// the structured [`ClientError::Timeout`] once a read timeout is set —
/// not hang, and not collapse into a generic `Io` error.
#[test]
fn read_timeout_surfaces_as_structured_timeout_error() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let hold = std::thread::spawn(move || {
        // Hold the accepted socket open, silent, until the test finishes.
        let (_sock, _) = listener.accept().unwrap();
        let _ = done_rx.recv();
    });

    let mut client = ServeClient::connect_binary(addr).unwrap();
    client
        .set_timeouts(Some(Duration::from_millis(50)), Some(Duration::from_millis(50)))
        .unwrap();
    let err = client.ping().unwrap_err();
    assert!(matches!(err, ClientError::Timeout(_)), "expected Timeout, got {err:?}");

    drop(done_tx);
    hold.join().unwrap();
}
