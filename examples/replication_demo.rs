//! End-to-end tour of the fan-in subsystem — and the CI replication-smoke
//! step.
//!
//! Starts two ingest nodes replicating their sketch state (streams `left`
//! and `right`, shared-secret auth on every hop) into one aggregator, plus
//! a single-server **oracle** that ingests every tuple directly. After a
//! replication barrier it asserts the aggregator's union answers for all
//! four query families agree with the oracle within the configured `ε`
//! (Property V: same-seed sketches merge into a valid sketch of the union —
//! at this scale bucket eviction makes the merged and directly-built
//! sketches `ε`-equivalent rather than bit-identical), then runs the
//! multi-stream set-expression queries — `|left ∪ right|`,
//! `|left ∩ right|`, `|left ∖ right|` under `y ≤ c` — checking the
//! inclusion–exclusion arithmetic exactly and the per-stream estimates
//! against dedicated oracles. Prints `REPLICATION SMOKE OK` on success
//! (the CI step greps for it).
//!
//! ```text
//! cargo run -p cora-examples --release --example replication_demo
//! ```

use cora_serve::client::ServeClient;
use cora_serve::protocol::{Request, SetOp};
use cora_serve::server::{start, ReplicateConfig, RunningServer, ServeConfig};
use cora_serve::start_aggregator;
use std::time::Duration;

const Y_MAX: u64 = 4_095;
const TOKEN: &str = "fan-in-demo-secret";

fn config() -> ServeConfig {
    ServeConfig {
        epsilon: 0.2,
        delta: 0.1,
        y_max: Y_MAX,
        max_stream_len: 1_000_000,
        seed: 42,
        shards: 2,
        merge_every: 1,
        x_domain_log2: 18,
        auth_token: Some(TOKEN.to_string()),
        ..ServeConfig::default()
    }
}

fn connect(server: &RunningServer) -> ServeClient {
    let mut client = ServeClient::connect_binary(server.local_addr()).expect("connect");
    client.auth(TOKEN).expect("auth");
    client
}

/// A stream of `n` tuples whose x-range starts at `base`: `left` and
/// `right` overlap on part of the item domain, so the set expressions have
/// real intersections to estimate.
fn tuples(base: u64, n: u64) -> Vec<(u64, u64)> {
    (0..n)
        .map(|i| (base + i % 2_500, (i * 167 + base) % (Y_MAX + 1)))
        .collect()
}

fn main() {
    // --- Topology: two ingest nodes → one aggregator, all token-gated. ----
    let agg = start_aggregator(config(), "127.0.0.1:0").expect("start aggregator");
    let replicate = |stream: &str| {
        Some(ReplicateConfig {
            interval_ms: 25,
            auth_token: Some(TOKEN.to_string()),
            ..ReplicateConfig::new(agg.local_addr().to_string(), stream)
        })
    };
    let left = start(
        ServeConfig {
            replicate: replicate("left"),
            ..config()
        },
        "127.0.0.1:0",
    )
    .expect("start left node");
    let right = start(
        ServeConfig {
            replicate: replicate("right"),
            ..config()
        },
        "127.0.0.1:0",
    )
    .expect("start right node");
    let oracle = start(config(), "127.0.0.1:0").expect("start oracle");

    let (mut cl, mut cr, mut co) = (connect(&left), connect(&right), connect(&oracle));
    let (a, b) = (tuples(0, 20_000), tuples(1_500, 20_000));
    cl.ingest_pipelined(&a, 2_000).expect("ingest left");
    cr.ingest_pipelined(&b, 2_000).expect("ingest right");
    co.ingest_pipelined(&a, 2_000).expect("oracle ingest");
    co.ingest_pipelined(&b, 2_000).expect("oracle ingest");
    cl.flush().expect("flush left");
    cr.flush().expect("flush right");
    co.flush().expect("flush oracle");

    // Replication barrier: both nodes' deltas acked by the aggregator.
    left.replication_sync(Duration::from_secs(30)).expect("sync left");
    right.replication_sync(Duration::from_secs(30)).expect("sync right");

    // --- Union answers agree with the direct oracle within ε. -------------
    // Both sides are ε-accurate estimators of the same union stream; their
    // disagreement is therefore bounded by roughly 2ε relative (they are
    // usually far closer — the merged and direct sketches only diverge once
    // bucket eviction has kicked in, and then only on evicted levels).
    let close = |label: &str, got: f64, want: f64| {
        let bound = 2.0 * 0.2 * want.abs().max(1.0);
        assert!(
            (got - want).abs() <= bound,
            "{label}: aggregator {got} vs oracle {want} (allowed ±{bound})"
        );
    };
    let mut cagg = connect(&agg);
    let mut streams = cagg.streams().expect("streams");
    streams.sort();
    assert_eq!(streams, vec!["left".to_string(), "right".to_string()]);
    for c in [Y_MAX / 4, Y_MAX / 2, Y_MAX] {
        close(
            "f2",
            cagg.query_f2(c).expect("agg f2"),
            co.query_f2(c).expect("oracle f2"),
        );
        close(
            "f0",
            cagg.query_f0(c).expect("agg f0"),
            co.query_f0(c).expect("oracle f0"),
        );
        close(
            "rarity",
            cagg.query_rarity(c).expect("agg rarity"),
            co.query_rarity(c).expect("oracle rarity"),
        );
    }
    println!("union of 2 replicated streams matches the direct oracle within ε");

    // --- Set expressions over the streams. --------------------------------
    // The inclusion–exclusion arithmetic is checked exactly against the
    // estimates the aggregator itself reports; the per-stream estimates are
    // checked against dedicated single-stream oracles within ε.
    let f0_of = |set: &[(u64, u64)], c: u64| -> f64 {
        let server = start(config(), "127.0.0.1:0").expect("start per-stream oracle");
        let mut client = connect(&server);
        client.ingest_pipelined(set, 2_000).expect("ingest");
        client.flush().expect("flush");
        let f0 = client.query_f0(c).expect("f0");
        server.shutdown();
        f0
    };
    let c = Y_MAX / 2;
    let response = cagg
        .request(&Request::SetF0 {
            a: "left".to_string(),
            b: "right".to_string(),
            op: SetOp::Intersect,
            c,
        })
        .expect("set_f0 intersect");
    let fa = response.f64_field("f_a").expect("f_a");
    let fb = response.f64_field("f_b").expect("f_b");
    let fu = response.f64_field("f_union").expect("f_union");
    let inter = response.f64_field("value").expect("value");
    let union = cagg.set_f0("left", "right", SetOp::Union, c).expect("union");
    let diff = cagg.set_f0("left", "right", SetOp::Diff, c).expect("diff");
    assert_eq!(inter, (fa + fb - fu).max(0.0), "inclusion–exclusion identity");
    assert_eq!(union, fu, "union op returns the merged-union estimate");
    assert_eq!(diff, (fa - inter).max(0.0), "difference identity");
    close("per-stream f_a", fa, f0_of(&a, c));
    close("per-stream f_b", fb, f0_of(&b, c));
    close("union f0", fu, co.query_f0(c).expect("oracle f0"));
    println!("set_f0 at c={c}: |A∪B|≈{union:.1} |A∩B|≈{inter:.1} |A∖B|≈{diff:.1}");

    agg.shutdown();
    left.shutdown();
    right.shutdown();
    oracle.shutdown();
    println!("REPLICATION SMOKE OK");
}
