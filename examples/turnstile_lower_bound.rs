//! Deletions change the game (Section 4 of the paper).
//!
//! With negative weights, any single-pass summary answering correlated
//! aggregate queries must essentially remember the whole stream: the paper
//! proves this by encoding the GREATER-THAN communication problem into a
//! turnstile stream. This example (1) builds such hard instances and shows
//! that answering the correlated query really does recover the comparison —
//! i.e. the summary must contain that information — and (2) runs the paper's
//! MULTIPASS algorithm, which sidesteps the bound by taking O(log y_max)
//! passes in small space.
//!
//! Run with: `cargo run -p cora-examples --release --example turnstile_lower_bound`

use cora_stream::{
    greater_than_instance, lower_bound::single_pass_lower_bound_bits, multipass_f2, solve_exactly,
    StoredStream, StreamTuple,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;

fn main() {
    let bits = 32u32;
    let mut rng = StdRng::seed_from_u64(5);

    println!("== the reduction: correlated queries on turnstile streams decide GREATER-THAN ==");
    let mut correct = 0;
    let trials = 1_000;
    for _ in 0..trials {
        let a: u64 = rng.gen_range(0..(1u64 << bits));
        let b: u64 = rng.gen_range(0..(1u64 << bits));
        let stream = greater_than_instance(a, b, bits);
        if solve_exactly(&stream, bits) == a.cmp(&b) {
            correct += 1;
        }
    }
    println!(
        "{correct}/{trials} random {bits}-bit GREATER-THAN instances decided correctly from the stream encoding"
    );
    println!(
        "=> a single-pass summary answering these queries needs ~{:.0} bits of state (Theorem 6 scaling: y_max / log y_max)",
        single_pass_lower_bound_bits(u64::from(bits))
    );

    println!();
    println!("== the escape hatch: MULTIPASS (Algorithm 4) in the turnstile model ==");
    // A turnstile stream: bulk inserts followed by deletions of half the data.
    let y_max = 65_535u64;
    let mut tuples = Vec::new();
    for i in 0..60_000u64 {
        tuples.push(StreamTuple::weighted(i % 300, (i * 131) % (y_max + 1), 1));
    }
    for i in 0..60_000u64 {
        if i % 2 == 0 {
            tuples.push(StreamTuple::weighted(i % 300, (i * 131) % (y_max + 1), -1));
        }
    }
    let stream = StoredStream::new(tuples);
    let estimator = multipass_f2(&stream, 0.2, 0.05, y_max, 11);
    println!(
        "multipass F2 estimator built with {} sequential passes over {} stored tuples",
        estimator.passes_used(),
        stream.len()
    );
    for tau in [y_max / 4, y_max / 2, y_max] {
        // Exact correlated F2 after deletions, for reference.
        let mut freqs = std::collections::HashMap::new();
        for t in stream.tuples().iter().filter(|t| t.y <= tau) {
            *freqs.entry(t.x).or_insert(0i64) += t.weight;
        }
        let exact: f64 = freqs.values().map(|&f| (f * f) as f64).sum();
        let est = estimator.query(tau);
        println!(
            "  tau = {tau:>6}: multipass estimate {est:>12.0} | exact {exact:>12.0} | ratio {:.3}",
            est / exact.max(1.0)
        );
    }
    let order_demo = solve_exactly(&greater_than_instance(7, 7, 8), 8);
    assert_eq!(order_demo, Ordering::Equal);
}
