//! The paper's motivating "drill-down" scenario (Section 1): a router exports
//! flow records (destination, bytes); a whole-stream quantile summary over the
//! bytes dimension is paired with a correlated-aggregate summary so an
//! operator can ask, *after* the stream has gone by:
//!
//! 1. What is the median flow size? The 95th percentile?
//! 2. What is F2 (a self-join size / skew indicator) of the destinations of
//!    all flows *smaller* than the median — and below the 95th percentile?
//! 3. How many distinct destinations appear among the small flows?
//!
//! Run with: `cargo run -p cora-examples --release --example netflow_drilldown`

use cora_core::{correlated_f2, CorrelatedF0};
use cora_sketch::{GkQuantiles, SpaceUsage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 300_000usize;
    let max_flow_bytes = 1_000_000u64;
    let mut rng = StdRng::seed_from_u64(7);

    // Summaries built while the stream is live. The y dimension is the flow
    // size in bytes; the x dimension is the destination address.
    let mut sizes = GkQuantiles::new(0.01).expect("valid epsilon");
    let mut f2 = correlated_f2(0.2, 0.05, max_flow_bytes, n as u64).expect("valid parameters");
    let mut distinct = CorrelatedF0::new(0.15, 0.05, 16, max_flow_bytes).expect("valid parameters");

    for _ in 0..n {
        // A heavy-tailed flow-size distribution and ~50k destinations, a few of
        // which ("servers") attract a disproportionate share of small flows.
        let dest: u64 = if rng.gen_bool(0.2) {
            rng.gen_range(0..20)
        } else {
            rng.gen_range(0..50_000)
        };
        let size: u64 = {
            let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-9);
            ((2_000.0 / u.powf(0.7)) as u64).min(max_flow_bytes)
        };
        sizes.insert(size);
        f2.insert(dest, size).expect("size within range");
        distinct.insert(dest, size).expect("size within range");
    }

    println!("== whole-stream quantile summary over flow sizes ==");
    let median = sizes.quantile(0.5).expect("non-empty");
    let p95 = sizes.quantile(0.95).expect("non-empty");
    println!(
        "median flow size ~ {median} bytes, 95th percentile ~ {p95} bytes ({} GK tuples stored)",
        sizes.stored_tuples()
    );

    println!();
    println!("== drill-down with thresholds chosen from the quantiles ==");
    let f2_small = f2.query(median).expect("answerable");
    let f2_all = f2.query(max_flow_bytes).expect("answerable");
    let f2_below_p95 = f2.query(p95).expect("answerable");
    println!("F2 of destinations with flow size <= median      : {f2_small:.3e}");
    println!("F2 of destinations with flow size <= 95th pct    : {f2_below_p95:.3e}");
    println!("F2 of destinations over the whole stream         : {f2_all:.3e}");
    println!(
        "  -> share of destination skew carried by the small flows: {:.1}%",
        100.0 * f2_small / f2_all
    );

    let d_small = distinct.query(median).expect("answerable");
    let d_all = distinct.query(max_flow_bytes).expect("answerable");
    println!();
    println!("distinct destinations among flows <= median       : ~{d_small:.0}");
    println!("distinct destinations over the whole stream       : ~{d_all:.0}");

    println!();
    println!(
        "summary sizes: F2 sketch {} tuples, F0 sketch {} tuples, quantiles {} tuples (stream had {n} records)",
        f2.stored_tuples(),
        distinct.stored_tuples(),
        sizes.stored_tuples()
    );
}
