//! Parallel ingest: shard a stream across worker threads with
//! `ShardedIngest`, then answer correlated queries from the merged composite.
//!
//! The per-shard sketches share one seed (the paper's Property V), so the
//! merge behind every query is lossless — the composite answers exactly as
//! if one sketch had seen the whole stream, up to the usual ε envelope.
//!
//! Run with: `cargo run -p cora-examples --release --example parallel_ingest`

use cora_core::ExactCorrelated;
use cora_stream::{sharded_correlated_f2, DatasetGenerator, ZipfGenerator};
use std::time::Instant;

fn main() {
    let epsilon = 0.2;
    let delta = 0.05;
    let y_max = 1_000_000u64;
    let n = 200_000usize;
    let shards = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));

    // The paper's Zipf(1) workload: skewed ids, uniform y.
    let mut generator = ZipfGenerator::new(1.0, 500_000, y_max, 42);
    let tuples = generator.generate(n);
    let pairs: Vec<(u64, u64)> = tuples.iter().map(|t| (t.x, t.y)).collect();
    let mut exact = ExactCorrelated::new();
    for &(x, y) in &pairs {
        exact.insert(x, y);
    }

    // N worker threads, each owning a same-seeded correlated-F2 sketch fed
    // over a lock-free SPSC ring; tuples are distributed round-robin in
    // batches (any partition works — the merge is lossless).
    let mut ingest =
        sharded_correlated_f2(epsilon, delta, y_max, n as u64, 42, shards).expect("valid params");
    let start = Instant::now();
    ingest.ingest(&pairs).expect("y within range");
    ingest.flush(); // barrier: all accepted tuples applied
    let elapsed = start.elapsed();

    println!(
        "ingested {n} tuples across {shards} shard workers in {elapsed:.2?} \
         ({:.2e} elem/s)",
        n as f64 / elapsed.as_secs_f64()
    );
    let stats = ingest.stats().expect("composite available");
    println!(
        "composite sketch: {} stored tuples over {} processed elements",
        stats.stored_tuples, stats.items_processed
    );
    println!();
    println!("threshold c      F2 estimate      F2 exact   rel.err");
    for c in [y_max / 10, y_max / 2, y_max] {
        let est = ingest.query(c).expect("answerable");
        let truth = exact.frequency_moment(2, c);
        println!(
            "{c:>11}  {est:>15.0}  {truth:>12.0}  {:>8.4}",
            (est - truth).abs() / truth.max(1.0)
        );
    }
}
