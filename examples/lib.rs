//! Support crate for the runnable examples; the examples themselves live next
//! to this file (`quickstart.rs`, `netflow_drilldown.rs`, ...). Shared helper
//! code used by more than one example goes here.
