//! End-to-end tour of the serving layer — and the CI serve-smoke step.
//!
//! Starts a `cora-serve` instance on a loopback port, drives bulk ingest
//! through the **pipelined binary protocol**, then answers all four query
//! families and windowed (time window × y-threshold) slices over **both
//! transports** — JSON lines and binary frames — asserting they are
//! bit-identical. It then snapshots the server to disk, **restarts** it
//! from the snapshot, re-queries, and asserts the answers survived. Prints
//! `SERVE SMOKE OK` on success (the CI step greps for it).
//!
//! ```text
//! cargo run -p cora-examples --release --example serve_demo
//! ```

use cora_serve::client::{ServeClient, WindowAnswer};
use cora_serve::server::{start, start_restored, ServeConfig};

fn main() {
    let config = ServeConfig {
        epsilon: 0.2,
        delta: 0.1,
        y_max: (1 << 16) - 1,
        max_stream_len: 1_000_000,
        seed: 42,
        shards: 2,
        merge_every: 2,
        phi: 0.05,
        x_domain_log2: 20,
        pane_ticks: 1_024,
        pane_k: 4,
        pane_retention: None,
        max_connections: 1_024,
        durability: None,
        auth_token: None,
        replicate: None,
    };

    // --- Phase 1: a fresh server takes ingest and answers queries. -------
    let server = start(config.clone(), "127.0.0.1:0").expect("start server");
    let addr = server.local_addr();
    println!("serving on {addr}");
    let mut client = ServeClient::connect(addr).expect("connect");
    client.ping().expect("ping");
    let mut binary = ServeClient::connect_binary(addr).expect("binary connect");
    binary.ping().expect("binary ping");

    // A synthetic "flow log": x = source id, y = response latency. Source 7
    // dominates the low-latency traffic; a tail of sources appears once.
    let mut tuples: Vec<(u64, u64)> = Vec::new();
    for i in 0..30_000u64 {
        tuples.push((7, i % 2_000));
        tuples.push((100 + (i % 800), (i * 131) % (1 << 16)));
    }
    for i in 0..200u64 {
        tuples.push((1_000_000 + i, (i * 257) % (1 << 16)));
    }
    // Bulk load through the pipelined binary path: every 2 000-tuple batch
    // is framed no-ack, one sync round trip closes the whole train.
    binary.ingest_pipelined(&tuples, 2_000).expect("pipelined ingest");
    client.flush().expect("flush barrier");

    let thresholds: Vec<u64> = (0..17).map(|i| ((1u64 << 16) - 1) * i / 16).collect();
    let f2: Vec<f64> = thresholds.iter().map(|&c| client.query_f2(c).expect("f2")).collect();
    let f0: Vec<f64> = thresholds.iter().map(|&c| client.query_f0(c).expect("f0")).collect();
    let rarity: Vec<f64> = thresholds
        .iter()
        .map(|&c| client.query_rarity(c).expect("rarity"))
        .collect();
    let hitters = client.query_heavy_hitters(2_000, 0.2).expect("heavy hitters");
    println!("      c          F2(c)      F0(c)  rarity(c)");
    for (i, &c) in thresholds.iter().enumerate() {
        println!("{c:>7}  {:>13.0}  {:>9.0}  {:>9.4}", f2[i], f0[i], rarity[i]);
    }
    println!(
        "heavy hitters below latency 2000 (phi=0.2): {:?}",
        hitters.iter().map(|h| h.item).collect::<Vec<_>>()
    );
    assert!(
        hitters.iter().any(|h| h.item == 7),
        "the planted heavy source must be reported"
    );

    // Transport divergence check: the binary protocol must produce the very
    // same answers, bit for bit, as the JSON lines above.
    for (i, &c) in thresholds.iter().enumerate() {
        assert_eq!(binary.query_f2(c).expect("binary f2"), f2[i], "binary f2 diverges at c={c}");
        assert_eq!(binary.query_f0(c).expect("binary f0"), f0[i], "binary f0 diverges at c={c}");
        assert_eq!(
            binary.query_rarity(c).expect("binary rarity"),
            rarity[i],
            "binary rarity diverges at c={c}"
        );
    }
    assert_eq!(
        binary.query_heavy_hitters(2_000, 0.2).expect("binary heavy hitters"),
        hitters,
        "binary heavy hitters diverge"
    );
    println!(
        "binary/JSON divergence: none across {} thresholds + heavy hitters",
        thresholds.len()
    );

    // Two-dimensional slices: recent time window × latency threshold. The
    // server stamps ingest with arrival ticks, so "the last 8192 ticks" is
    // the most recent 8192 accepted tuples.
    let windows: Vec<u64> = vec![8_192, 65_536];
    let window_f2: Vec<WindowAnswer> = windows
        .iter()
        .map(|&w| client.query_window_f2(w, 2_000).expect("window f2"))
        .collect();
    let window_f0: Vec<WindowAnswer> = windows
        .iter()
        .map(|&w| client.query_window_f0(w, 2_000).expect("window f0"))
        .collect();
    println!(" window        F2(y<=2000)      F0(y<=2000)   resolved span");
    for (i, &w) in windows.iter().enumerate() {
        println!(
            "{w:>7}  {:>16.0}  {:>15.0}   [{}, {})",
            window_f2[i].value, window_f0[i].value, window_f2[i].resolved_lo,
            window_f2[i].resolved_hi
        );
        assert_eq!(
            binary.query_window_f2(w, 2_000).expect("binary window f2"),
            window_f2[i],
            "binary windowed f2 diverges at window={w}"
        );
        assert_eq!(
            binary.query_window_f0(w, 2_000).expect("binary window f0"),
            window_f0[i],
            "binary windowed f0 diverges at window={w}"
        );
    }
    assert!(window_f2[1].value > 0.0 && window_f0[1].value > 0.0);

    let stats = client.stats().expect("stats");
    println!(
        "stats: accepted={} composite_items={} epoch={} staleness_batches={}",
        stats.u64_field("items_accepted").unwrap(),
        stats.u64_field("composite_items").unwrap(),
        stats.u64_field("composite_epoch").unwrap(),
        stats.u64_field("staleness_batches").unwrap(),
    );

    // --- Phase 2: snapshot, restart, and verify identical answers. -------
    let dir = std::env::temp_dir().join(format!("cora_serve_demo_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snapshot_path = dir.join("serve.snap");
    let bytes = client
        .snapshot(snapshot_path.to_str().expect("utf8 path"))
        .expect("snapshot");
    println!("snapshot written: {bytes} bytes at {}", snapshot_path.display());
    drop(client);
    drop(binary);
    server.shutdown();

    let bundle = std::fs::read(&snapshot_path).expect("read snapshot");
    let restored = start_restored(config, "127.0.0.1:0", &bundle).expect("restart from snapshot");
    let mut client = ServeClient::connect(restored.local_addr()).expect("reconnect");
    client.flush().expect("post-restore flush");
    for (i, &c) in thresholds.iter().enumerate() {
        assert_eq!(client.query_f2(c).expect("f2"), f2[i], "f2 differs at c={c}");
        assert_eq!(client.query_f0(c).expect("f0"), f0[i], "f0 differs at c={c}");
        assert_eq!(
            client.query_rarity(c).expect("rarity"),
            rarity[i],
            "rarity differs at c={c}"
        );
    }
    let restored_hitters = client.query_heavy_hitters(2_000, 0.2).expect("heavy hitters");
    assert_eq!(restored_hitters, hitters, "heavy hitters differ after restore");
    for (i, &w) in windows.iter().enumerate() {
        assert_eq!(
            client.query_window_f2(w, 2_000).expect("window f2"),
            window_f2[i],
            "windowed f2 differs at window={w}"
        );
        assert_eq!(
            client.query_window_f0(w, 2_000).expect("window f0"),
            window_f0[i],
            "windowed f0 differs at window={w}"
        );
    }
    // And the binary transport agrees with all of it after the restart too.
    let mut binary = ServeClient::connect_binary(restored.local_addr()).expect("binary reconnect");
    for (i, &c) in thresholds.iter().enumerate() {
        assert_eq!(
            binary.query_f2(c).expect("binary f2"),
            f2[i],
            "binary f2 diverges after restore at c={c}"
        );
    }
    assert_eq!(
        binary.query_heavy_hitters(2_000, 0.2).expect("binary heavy hitters"),
        hitters,
        "binary heavy hitters diverge after restore"
    );
    drop(binary);
    println!(
        "restart verified: {} thresholds bit-identical across f2/f0/rarity + heavy hitters, {} windowed slices, both transports",
        thresholds.len(),
        2 * windows.len()
    );

    // The restored server is live, not a read-only archive.
    client.ingest(&[(7, 0), (7, 1)]).expect("post-restore ingest");
    client.flush().expect("post-restore flush");
    assert!(client.query_f2((1 << 16) - 1).expect("f2") > f2[16]);

    drop(client);
    restored.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("SERVE SMOKE OK");
}
