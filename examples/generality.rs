//! The point of the paper's general method: one framework, many aggregates.
//!
//! This example runs the *same* stream through the generic correlated sketch
//! instantiated with four different aggregation functions — count, sum, F2 and
//! F3 — plus the heavy-hitters and rarity extensions, and compares every
//! answer against the exact linear-storage baseline.
//!
//! Run with: `cargo run -p cora-examples --release --example generality`

use cora_core::{
    correlated_count, correlated_f2, correlated_fk, correlated_sum, CorrelatedHeavyHitters,
    CorrelatedRarity, ExactCorrelated,
};
use cora_stream::{DatasetGenerator, ZipfGenerator};

fn main() {
    let n = 100_000usize;
    let y_max = 1_000_000u64;
    let mut generator = ZipfGenerator::new(1.0, 100_000, y_max, 3);
    let tuples = generator.generate(n);

    let mut count = correlated_count(0.2, 0.05, y_max, n as u64).unwrap();
    let mut sum = correlated_sum(0.2, 0.05, y_max, n as u64).unwrap();
    let mut f2 = correlated_f2(0.2, 0.05, y_max, n as u64).unwrap();
    let mut f3 = correlated_fk(3, 0.25, 0.05, y_max, n as u64).unwrap();
    let mut hh = CorrelatedHeavyHitters::new(0.2, 0.05, 0.05, y_max, n as u64).unwrap();
    let mut rarity = CorrelatedRarity::new(0.2, 17, y_max).unwrap();
    let mut exact = ExactCorrelated::new();

    for t in &tuples {
        count.insert(t.x, t.y).unwrap();
        sum.update(t.x, t.y, 3).unwrap(); // weighted sum: every tuple carries weight 3
        f2.insert(t.x, t.y).unwrap();
        f3.insert(t.x, t.y).unwrap();
        hh.insert(t.x, t.y).unwrap();
        rarity.insert(t.x, t.y).unwrap();
        exact.insert(t.x, t.y);
    }

    let c = y_max / 3; // threshold chosen at query time
    println!("Zipf(1.0) stream of {n} tuples; query threshold c = {c}");
    println!();
    println!("aggregate        estimate          exact             rel.err   sketch tuples");

    let rows: Vec<(&str, f64, f64, usize)> = vec![
        (
            "count",
            count.query(c).unwrap(),
            exact.count(c) as f64,
            count.stored_tuples(),
        ),
        (
            "sum (w=3)",
            sum.query(c).unwrap(),
            3.0 * exact.count(c) as f64,
            sum.stored_tuples(),
        ),
        (
            "F2",
            f2.query(c).unwrap(),
            exact.frequency_moment(2, c),
            f2.stored_tuples(),
        ),
        (
            "F3",
            f3.query(c).unwrap(),
            exact.frequency_moment(3, c),
            f3.stored_tuples(),
        ),
        (
            "rarity",
            rarity.query(c).unwrap(),
            exact.rarity(c),
            rarity.stored_tuples(),
        ),
    ];
    for (name, est, truth, tuples_stored) in rows {
        println!(
            "{name:<14} {est:>15.3}  {truth:>15.3}  {:>10.4}  {tuples_stored:>12}",
            (est - truth).abs() / truth.max(1e-9)
        );
    }

    println!();
    println!("correlated F2-heavy hitters at c = {c} (phi = 0.05):");
    let exact_hh = exact.f2_heavy_hitters(c, 0.05);
    let approx_hh = hh.query_heavy_hitters(c, 0.05).unwrap();
    println!("  exact : {:?}", exact_hh.iter().map(|&(x, _)| x).collect::<Vec<_>>());
    println!(
        "  sketch: {:?}",
        approx_hh.iter().map(|h| h.item).collect::<Vec<_>>()
    );
    println!();
    println!("exact baseline stores {} tuples", exact.stored_tuples());
}
