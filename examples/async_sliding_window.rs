//! Sliding-window aggregation over an asynchronous (out-of-order) stream via
//! the reduction to correlated aggregates (Section 1.1 of the paper).
//!
//! Sensor readings arrive with network-induced reordering; at any point the
//! operator can ask for the number of readings and the F2 of sensor ids within
//! the last W milliseconds — without the summary having known W in advance.
//!
//! Run with: `cargo run -p cora-examples --release --example async_sliding_window`

use cora_stream::{AsyncWindowCount, AsyncWindowF2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let t_max = 3_600_000u64; // one hour in milliseconds
    let n = 200_000usize;
    let mut rng = StdRng::seed_from_u64(21);

    let mut count = AsyncWindowCount::new(0.2, 0.05, t_max, n as u64, 7).expect("valid parameters");
    let mut f2 = AsyncWindowF2::new(0.2, 0.05, t_max, n as u64, 7).expect("valid parameters");
    let mut events: Vec<(u64, u64)> = Vec::with_capacity(n);

    for i in 0..n {
        let sensor = (i as u64) % 2_000;
        // Generation timestamps drift forward but are observed with up to
        // 30 seconds of reordering jitter.
        let true_time = (i as u64) * (t_max / n as u64);
        let observed_order_jitter = rng.gen_range(0..30_000u64);
        let t = true_time.saturating_sub(observed_order_jitter);
        events.push((sensor, t));
    }
    // Shuffle to simulate out-of-order arrival.
    for i in (1..events.len()).rev() {
        let j = rng.gen_range(0..=i);
        events.swap(i, j);
    }
    for &(sensor, t) in &events {
        count.observe(sensor, t).expect("timestamp within range");
        f2.observe(sensor, t).expect("timestamp within range");
    }

    let now = t_max;
    println!("observed {n} out-of-order readings spanning one hour");
    println!();
    println!("window (min)   est. readings   exact readings     est. F2(ids)");
    for window_min in [1u64, 5, 15, 30, 60] {
        let window = window_min * 60_000;
        let est_count = count.query_window(now, window).expect("answerable");
        let exact_count = events.iter().filter(|&&(_, t)| t >= now - window).count();
        let est_f2 = f2.query_window(now, window).expect("answerable");
        println!("{window_min:>12}   {est_count:>13.0}   {exact_count:>14}   {est_f2:>14.0}");
    }
    println!();
    println!(
        "window summaries store {} (count) and {} (F2) tuples — independent of how many windows are queried",
        count.stored_tuples(),
        f2.stored_tuples()
    );
}
