//! Quickstart: build correlated F2 and F0 sketches, feed a stream of
//! (item, y) tuples, and answer threshold queries chosen only at query time.
//!
//! Run with: `cargo run -p cora-examples --release --example quickstart`

use cora_core::{correlated_f2, CorrelatedF0, ExactCorrelated};
use cora_stream::{DatasetGenerator, UniformGenerator};

fn main() {
    let epsilon = 0.2;
    let delta = 0.05;
    let y_max = 1_000_000u64;
    let n = 200_000usize;

    // Generate a stream of (x, y) tuples: x uniform over half a million ids,
    // y uniform over [0, 1e6] — the paper's "Uniform" workload.
    let mut generator = UniformGenerator::new(500_000, y_max, 42);
    let tuples = generator.generate(n);

    // Build the three summaries: correlated F2, correlated F0, and the exact
    // (linear-storage) baseline used for comparison.
    let mut f2 = correlated_f2(epsilon, delta, y_max, n as u64).expect("valid parameters");
    let mut f0 = CorrelatedF0::new(epsilon, delta, 20, y_max).expect("valid parameters");
    let mut exact = ExactCorrelated::new();

    // Ingest the correlated-F2 sketch through the amortized batch API (one
    // level-loop pass per chunk); F0 and the baseline take the scalar path.
    let pairs: Vec<(u64, u64)> = tuples.iter().map(|t| (t.x, t.y)).collect();
    for chunk in pairs.chunks(4096) {
        f2.update_batch(chunk).expect("y within range");
    }
    for t in &tuples {
        f0.insert(t.x, t.y).expect("y within range");
        exact.insert(t.x, t.y);
    }

    println!("ingested {n} tuples (x <= 500000, y <= {y_max})");
    println!(
        "correlated-F2 sketch: {} stored tuples | correlated-F0 sketch: {} stored tuples | exact baseline: {} tuples",
        f2.stored_tuples(),
        f0.stored_tuples(),
        exact.stored_tuples()
    );
    println!();
    println!("threshold c      F2 estimate      F2 exact   rel.err      F0 estimate   F0 exact   rel.err");

    // The selection threshold is chosen *now*, long after the stream was seen.
    for c in [y_max / 10, y_max / 4, y_max / 2, (3 * y_max) / 4, y_max] {
        let f2_est = f2.query(c).expect("answerable");
        let f2_true = exact.frequency_moment(2, c);
        let f0_est = f0.query(c).expect("answerable");
        let f0_true = exact.distinct_count(c);
        println!(
            "{c:>11}  {f2_est:>15.0}  {f2_true:>12.0}  {:>8.4}  {f0_est:>15.0}  {f0_true:>9.0}  {:>8.4}",
            (f2_est - f2_true).abs() / f2_true.max(1.0),
            (f0_est - f0_true).abs() / f0_true.max(1.0),
        );
    }
}
