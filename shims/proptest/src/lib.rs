//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, ...) { body }`),
//!   including the `#![proptest_config(...)]` inner attribute;
//! * [`Strategy`] with range, tuple, and [`collection::vec`] combinators and
//!   [`any`] for full-domain primitives;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports the
//! generated inputs via the assertion message and the deterministic per-test
//! seed, which is enough to reproduce it. Generation is seeded from the test
//! name (FNV-1a), so runs are reproducible and independent of execution
//! order.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng, Standard};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic source of test inputs, one per property-test function.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed a generator from the test's name, so every test draws an
    /// independent, reproducible input sequence.
    pub fn deterministic(test_name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(StdRng::seed_from_u64(h))
    }

    /// Access the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A recipe for generating test inputs of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Full-domain strategy for primitive types; created by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Strategy producing any value of the primitive type `T`.
pub fn any<T: Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng().gen::<T>()
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<Output = T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<Output = T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// is uniform over `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "vec strategy needs a non-empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng().gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Execution configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };

    /// Namespace alias so `prop::collection::vec(...)` resolves as in real
    /// proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a property; supports an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` that checks `body` against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // Nested closure keeps `?`/control flow inside the body local.
                #[allow(clippy::redundant_closure_call)]
                (|| { $body })();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_is_reproducible() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        use rand::Rng;
        assert_eq!(a.rng().gen::<u64>(), b.rng().gen::<u64>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1i64..20) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..20).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec((0u64..10, 1i64..5), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            for (a, b) in v {
                prop_assert!(a < 10);
                prop_assert!((1..5).contains(&b));
            }
        }

        #[test]
        fn any_is_unconstrained(x in any::<u64>()) {
            let _ = x;
            prop_assert!(true);
        }
    }
}
