//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim implements exactly the subset of the `rand 0.8` API the
//! workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded via
//!   SplitMix64 (`SeedableRng::seed_from_u64`);
//! * the [`Rng`] extension trait with `gen`, `gen_range`, and `gen_bool`;
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates shuffling.
//!
//! Determinism is the property the workspace actually relies on (sketches
//! must be reproducible from a `u64` seed, and merging requires identical
//! hash functions on every node); statistical quality beyond that is provided
//! by xoshiro256**, which passes BigCrush. The shim is written so that
//! swapping the real `rand` crate back in is a manifest-only change.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire output is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a primitive type uniformly over its full domain
    /// (for `f64`, uniformly over `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive integer range.
    ///
    /// Panics if the range is empty, matching `rand`'s behaviour.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their whole domain ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to `u64` preserving order within the type's domain.
    fn to_u64(self) -> u64;
    /// Inverse of [`UniformInt::to_u64`].
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                // Order-preserving bias: map MIN..=MAX onto 0..=u64-range.
                (self as $u ^ (1 << (<$u>::BITS - 1))) as u64
            }
            fn from_u64(v: u64) -> Self {
                ((v as $u) ^ (1 << (<$u>::BITS - 1))) as $t
            }
        }
    )*};
}

impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling on the top multiple of `span` to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

impl<T: UniformInt> SampleRange for Range<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample from empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl<T: UniformInt> SampleRange for RangeInclusive<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample from empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded through SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` (whose algorithm is explicitly
    /// unspecified), this shim documents its algorithm so the workspace's
    /// golden values stay stable across toolchain updates.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            if rng.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues), "gen_bool badly biased: {trues}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
