//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this shim implements the
//! subset of the criterion API the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! `Throughput`, `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock timing loop.
//!
//! Reported numbers are medians over `sample_size` samples with a short
//! warm-up; good enough to rank implementations and spot order-of-magnitude
//! regressions, without criterion's statistical machinery. Output is one
//! `name  median  min  max  [throughput]` line per benchmark on stdout.
//!
//! When the `CRITERION_JSON` environment variable names a file, one JSON line
//! per benchmark (`{"bench", "median_ns", "min_ns", "max_ns",
//! "throughput_per_s"?}`) is appended to it as well — the CI bench-smoke job
//! uses this to record the performance trajectory of every PR as an artifact.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimisation barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` sizes its batches. The shim runs one routine call per
/// setup call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; criterion would batch many per allocation.
    SmallInput,
    /// Large setup output; criterion would batch few per allocation.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Measured-quantity annotation used to derive throughput lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name plus a parameter value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only the parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Time `routine`, called once per sample after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on a fresh value from `setup` each sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (min, max) = (samples[0], samples[samples.len() - 1]);
    let per_second = throughput.map(|t| {
        let secs = median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n as f64 / secs,
        }
    });
    let rate = throughput.map(|t| {
        let unit = match t {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        };
        format!("  {:.3e} {unit}", per_second.unwrap_or(0.0))
    });
    println!(
        "{name:<50} median {median:>12.3?}  min {min:>12.3?}  max {max:>12.3?}{}",
        rate.unwrap_or_default()
    );
    append_json_line(name, median, min, max, per_second);
}

/// Append this benchmark's summary as a JSON line to `$CRITERION_JSON`, when
/// set. Failures are reported to stderr but never fail the bench run.
fn append_json_line(
    name: &str,
    median: Duration,
    min: Duration,
    max: Duration,
    per_second: Option<f64>,
) {
    let Some(path) = std::env::var_os("CRITERION_JSON") else {
        return;
    };
    // Benchmark names in this workspace are plain ASCII identifiers with '/'
    // separators; escape the quote/backslash anyway for robustness.
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect();
    let mut line = format!(
        "{{\"bench\":\"{escaped}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{}",
        median.as_nanos(),
        min.as_nanos(),
        max.as_nanos()
    );
    if let Some(rate) = per_second {
        line.push_str(&format!(",\"throughput_per_s\":{rate}"));
    }
    line.push_str("}\n");
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = result {
        eprintln!("criterion shim: could not append to {path:?}: {e}");
    }
}

/// A named set of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    // Held to mirror criterion's API (groups borrow the Criterion); settings
    // below are group-scoped and do not write back through it.
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (scoped to this group,
    /// as in real criterion).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput quantity.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<N: std::fmt::Display, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&full, &mut bencher.samples, self.throughput);
        self
    }

    /// Run one benchmark that receives an explicit input value.
    pub fn bench_with_input<N: std::fmt::Display, I: ?Sized, F>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        report(&full, &mut bencher.samples, self.throughput);
        self
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(name, &mut bencher.samples, None);
        self
    }
}

/// Bundle benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
        group.finish();
    }

    #[test]
    fn iter_batched_calls_setup_per_sample() {
        let mut setups = 0usize;
        let mut bencher = Bencher::new(2);
        bencher.iter_batched(
            || {
                setups += 1;
                Vec::<u8>::with_capacity(8)
            },
            |mut v| {
                v.push(1);
                v
            },
            BatchSize::LargeInput,
        );
        assert_eq!(setups, 3);
        assert_eq!(bencher.samples.len(), 2);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn json_lines_are_appended_when_env_set() {
        let path = std::env::temp_dir().join(format!(
            "criterion_shim_json_test_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_JSON", &path);
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("jsonl");
        group
            .sample_size(2)
            .throughput(Throughput::Elements(100))
            .bench_function("probe", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        std::env::remove_var("CRITERION_JSON");
        let contents = std::fs::read_to_string(&path).expect("json file written");
        let line = contents
            .lines()
            .find(|l| l.contains("\"jsonl/probe\""))
            .expect("probe line present");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"median_ns\":"));
        assert!(line.contains("\"throughput_per_s\":"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sample_size_is_group_scoped() {
        let mut c = Criterion::default();
        {
            let mut group_a = c.benchmark_group("a");
            group_a.sample_size(100);
        }
        let mut runs = 0usize;
        let mut group_b = c.benchmark_group("b");
        group_b.bench_function("default", |b| b.iter(|| runs += 1));
        // Default 10 samples + 1 warm-up, NOT group_a's 100.
        assert_eq!(runs, 11);
    }
}
