//! Shared helpers for the cross-crate integration tests in `tests/tests/`.

#![warn(missing_docs)]

use cora_core::ExactCorrelated;
use cora_stream::StreamTuple;

/// Stream length for an integration test: `default`, scaled by the
/// `CORA_TEST_STREAM_SCALE` environment variable when set (a positive float
/// multiplier — e.g. `0.25` for a quick smoke pass on a slow machine, `4` for
/// a heavier accuracy soak). The result is clamped to at least 1000 tuples so
/// accuracy assertions keep enough signal.
///
/// The default sizes run the whole `cargo test -q` suite in well under a
/// minute in the dev profile since the insert hot path was optimized; this
/// knob exists so the big configurations stay one env var away in both
/// directions rather than needing code edits.
pub fn stream_len(default: usize) -> usize {
    match std::env::var("CORA_TEST_STREAM_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        Some(scale) if scale > 0.0 && scale.is_finite() => {
            ((default as f64 * scale) as usize).max(1000)
        }
        _ => default,
    }
}

/// Relative error of `estimate` against a non-zero `truth`.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    assert!(truth != 0.0, "relative error undefined for zero truth");
    (estimate - truth).abs() / truth
}

/// Feed a tuple slice into both a sketch (through `insert`) and a fresh exact
/// baseline, returning the baseline.
pub fn ingest_with_baseline<F>(tuples: &[StreamTuple], mut insert: F) -> ExactCorrelated
where
    F: FnMut(&StreamTuple),
{
    let mut exact = ExactCorrelated::new();
    for t in tuples {
        insert(t);
        exact.update(t.x, t.y, t.weight);
    }
    exact
}
