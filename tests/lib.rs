//! Shared helpers for the cross-crate integration tests in `tests/tests/`.
