//! Shared helpers for the cross-crate integration tests in `tests/tests/`.

#![warn(missing_docs)]

use cora_core::ExactCorrelated;
use cora_stream::StreamTuple;

/// Relative error of `estimate` against a non-zero `truth`.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    assert!(truth != 0.0, "relative error undefined for zero truth");
    (estimate - truth).abs() / truth
}

/// Feed a tuple slice into both a sketch (through `insert`) and a fresh exact
/// baseline, returning the baseline.
pub fn ingest_with_baseline<F>(tuples: &[StreamTuple], mut insert: F) -> ExactCorrelated
where
    F: FnMut(&StreamTuple),
{
    let mut exact = ExactCorrelated::new();
    for t in tuples {
        insert(t);
        exact.update(t.x, t.y, t.weight);
    }
    exact
}
