//! Shared helpers for the cross-crate integration tests in `tests/tests/`.

#![warn(missing_docs)]

use cora_core::ExactCorrelated;
use cora_stream::StreamTuple;

/// Stream length for an integration test: `default`, scaled by the
/// `CORA_TEST_STREAM_SCALE` environment variable when set (a positive float
/// multiplier — e.g. `0.25` for a quick smoke pass on a slow machine, `4` for
/// a heavier accuracy soak). The result is clamped to at least 1000 tuples so
/// accuracy assertions keep enough signal.
///
/// The default sizes run the whole `cargo test -q` suite in well under a
/// minute in the dev profile since the insert hot path was optimized; this
/// knob exists so the big configurations stay one env var away in both
/// directions rather than needing code edits.
pub fn stream_len(default: usize) -> usize {
    match std::env::var("CORA_TEST_STREAM_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        Some(scale) if scale > 0.0 && scale.is_finite() => {
            ((default as f64 * scale) as usize).max(1000)
        }
        _ => default,
    }
}

/// Relative error of `estimate` against a non-zero `truth`.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    assert!(truth != 0.0, "relative error undefined for zero truth");
    (estimate - truth).abs() / truth
}

/// Exact ground truth for windowed correlated queries: replays the raw
/// `(x, y, t)` tuple stream and computes the true F2 / F0 / count of any
/// two-dimensional slice — ticks in `[lo, hi)` and `y ≤ c` — by brute force.
///
/// Estimators are compared against the slice the ring *resolved* (its
/// pane-aligned `(resolved_lo, resolved_hi)` span), so pane quantization
/// never shows up as estimation error in the assertions.
#[derive(Debug, Default, Clone)]
pub struct WindowOracle {
    tuples: Vec<(u64, u64, u64)>,
}

impl WindowOracle {
    /// An oracle with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one `(x, y, t)` tuple (any arrival order).
    pub fn observe(&mut self, x: u64, y: u64, t: u64) {
        self.tuples.push((x, y, t));
    }

    /// Tuples inside the slice: ticks in `[lo, hi)`, `y ≤ c`.
    fn slice(&self, lo: u64, hi: u64, c: u64) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.tuples
            .iter()
            .copied()
            .filter(move |&(_, y, t)| t >= lo && t < hi && y <= c)
    }

    /// Exact number of tuples in the slice.
    pub fn count(&self, lo: u64, hi: u64, c: u64) -> f64 {
        self.slice(lo, hi, c).count() as f64
    }

    /// Exact second frequency moment of the `x` values in the slice.
    pub fn f2(&self, lo: u64, hi: u64, c: u64) -> f64 {
        self.frequencies(lo, hi, c).values().map(|&n| (n as f64) * (n as f64)).sum()
    }

    /// Exact number of distinct `x` values in the slice.
    pub fn f0(&self, lo: u64, hi: u64, c: u64) -> f64 {
        self.frequencies(lo, hi, c).len() as f64
    }

    /// Exact decayed F2 for pane-granular fading-factor semantics: the caller
    /// supplies each pane's `(start, end)` span and decay weight `g` (from
    /// `pane_spans()` and `decay_weight()` on the ring), and the oracle
    /// computes `Σ_x (Σ_panes g · freq_x(pane, y ≤ c))²` — F2 of the
    /// per-pane-weighted union, matching the sketch's linear accumulator.
    pub fn decayed_f2(&self, weighted_spans: &[(u64, u64, f64)], c: u64) -> f64 {
        let mut weighted: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
        for &(lo, hi, g) in weighted_spans {
            for (x, n) in self.frequencies(lo, hi, c) {
                *weighted.entry(x).or_insert(0.0) += g * n as f64;
            }
        }
        weighted.values().map(|&w| w * w).sum()
    }

    /// Exact per-`x` frequencies of the slice.
    pub fn frequencies(&self, lo: u64, hi: u64, c: u64) -> std::collections::HashMap<u64, u64> {
        let mut freq = std::collections::HashMap::new();
        for (x, _, _) in self.slice(lo, hi, c) {
            *freq.entry(x).or_insert(0u64) += 1;
        }
        freq
    }
}

/// Feed a tuple slice into both a sketch (through `insert`) and a fresh exact
/// baseline, returning the baseline.
pub fn ingest_with_baseline<F>(tuples: &[StreamTuple], mut insert: F) -> ExactCorrelated
where
    F: FnMut(&StreamTuple),
{
    let mut exact = ExactCorrelated::new();
    for t in tuples {
        insert(t);
        exact.update(t.x, t.y, t.weight);
    }
    exact
}
