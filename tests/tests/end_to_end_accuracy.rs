//! End-to-end accuracy of every correlated aggregate against the exact
//! linear-storage baseline, on every generator from the paper's evaluation.
//!
//! Stream sizes honor `CORA_TEST_STREAM_SCALE` (see [`cora_tests::stream_len`])
//! so the big configurations can be scaled up for accuracy soaks or down for
//! quick smoke passes without code edits.

use cora_core::{
    correlated_count, correlated_f2_seeded, correlated_fk_seeded, CorrelatedF0, ExactCorrelated,
};
use cora_stream::{
    default_thresholds, DatasetGenerator, EthernetGenerator, UniformGenerator, ZipfGenerator,
};
use cora_tests::stream_len;

fn n() -> usize {
    stream_len(40_000)
}

fn generators() -> Vec<Box<dyn DatasetGenerator>> {
    vec![
        Box::new(UniformGenerator::new(100_000, 1_000_000, 11)),
        Box::new(ZipfGenerator::new(1.0, 100_000, 1_000_000, 12)),
        Box::new(ZipfGenerator::new(2.0, 100_000, 1_000_000, 13)),
        Box::new(EthernetGenerator::new(1_000_000, 14)),
    ]
}

#[test]
fn correlated_f2_is_within_epsilon_on_all_datasets() {
    let epsilon = 0.2;
    for mut generator in generators() {
        let name = generator.name();
        let y_max = generator.y_max();
        let tuples = generator.generate(n());
        let mut sketch = correlated_f2_seeded(epsilon, 0.05, y_max, n() as u64, 99).unwrap();
        let mut exact = ExactCorrelated::new();
        for t in &tuples {
            sketch.insert(t.x, t.y).unwrap();
            exact.insert(t.x, t.y);
        }
        for c in default_thresholds(y_max, 5) {
            let truth = exact.frequency_moment(2, c);
            if truth == 0.0 {
                continue;
            }
            let est = sketch.query(c).unwrap();
            let err = (est - truth).abs() / truth;
            assert!(
                err <= epsilon + 0.05,
                "[{name}] F2 at c={c}: est {est}, truth {truth}, err {err}"
            );
        }
    }
}

#[test]
fn correlated_f0_is_within_tolerance_on_all_datasets() {
    let epsilon = 0.15;
    for mut generator in generators() {
        let name = generator.name();
        let y_max = generator.y_max();
        let tuples = generator.generate(n());
        let mut sketch = CorrelatedF0::with_seed(epsilon, 0.05, 20, y_max, 7).unwrap();
        let mut exact = ExactCorrelated::new();
        for t in &tuples {
            sketch.insert(t.x, t.y).unwrap();
            exact.insert(t.x, t.y);
        }
        for c in default_thresholds(y_max, 5) {
            let truth = exact.distinct_count(c);
            if truth < 50.0 {
                continue; // tiny selections: absolute noise dominates
            }
            let est = sketch.query(c).unwrap();
            let err = (est - truth).abs() / truth;
            assert!(
                err <= 3.0 * epsilon,
                "[{name}] F0 at c={c}: est {est}, truth {truth}, err {err}"
            );
        }
    }
}

#[test]
fn correlated_count_matches_exact_on_all_datasets() {
    for mut generator in generators() {
        let name = generator.name();
        let y_max = generator.y_max();
        let tuples = generator.generate(n());
        let mut sketch = correlated_count(0.2, 0.05, y_max, n() as u64).unwrap();
        let mut exact = ExactCorrelated::new();
        for t in &tuples {
            sketch.insert(t.x, t.y).unwrap();
            exact.insert(t.x, t.y);
        }
        for c in default_thresholds(y_max, 4) {
            let truth = exact.count(c) as f64;
            if truth == 0.0 {
                continue;
            }
            let est = sketch.query(c).unwrap();
            let err = (est - truth).abs() / truth;
            assert!(
                err <= 0.25,
                "[{name}] count at c={c}: est {est}, truth {truth}, err {err}"
            );
        }
    }
}

#[test]
fn correlated_f3_tracks_exact_on_skewed_data() {
    let mut generator = ZipfGenerator::new(1.5, 50_000, 1_000_000, 21);
    let y_max = generator.y_max();
    let tuples = generator.generate(n());
    let mut sketch = correlated_fk_seeded(3, 0.25, 0.1, y_max, n() as u64, 5).unwrap();
    let mut exact = ExactCorrelated::new();
    for t in &tuples {
        sketch.insert(t.x, t.y).unwrap();
        exact.insert(t.x, t.y);
    }
    for c in default_thresholds(y_max, 3) {
        let truth = exact.frequency_moment(3, c);
        if truth == 0.0 {
            continue;
        }
        let est = sketch.query(c).unwrap();
        let err = (est - truth).abs() / truth;
        assert!(err <= 0.4, "F3 at c={c}: est {est}, truth {truth}, err {err}");
    }
}

#[test]
fn sketch_space_is_sublinear_in_stream_size_for_large_streams() {
    // The paper's headline: the sketch is much smaller than the stream once
    // the stream is large (its Section 5 notes savings kick in past ~10M
    // tuples at full scale; at test scale we check the sketch stops growing).
    let mut generator = UniformGenerator::new(100_000, 1_000_000, 31);
    let y_max = generator.y_max();
    let tuples = generator.generate(stream_len(120_000));
    let mut sketch = correlated_f2_seeded(0.25, 0.1, y_max, 200_000, 3).unwrap();
    let mut size_at_half = 0usize;
    for (i, t) in tuples.iter().enumerate() {
        sketch.insert(t.x, t.y).unwrap();
        if i == tuples.len() / 2 {
            size_at_half = sketch.stored_tuples();
        }
    }
    let size_at_end = sketch.stored_tuples();
    // Growth must decelerate: the second half of the stream adds markedly
    // fewer tuples to the sketch than the first half did (the curve flattens,
    // as in Figures 3-5 of the paper).
    let first_half_growth = size_at_half as f64;
    let second_half_growth = (size_at_end - size_at_half) as f64;
    assert!(
        second_half_growth < 0.8 * first_half_growth,
        "sketch growth did not decelerate: {size_at_half} tuples after half the stream, \
         {size_at_end} after all of it"
    );
}
