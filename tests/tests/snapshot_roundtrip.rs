//! Snapshot → restore → query equivalence on the paper's integration
//! streams, for all four aggregates, plus restore → `merge_from`
//! compatibility and rejection of damaged snapshots.
//!
//! "Equivalence" here is **bit identity**: every counter in the snapshot
//! format is an integer (exact stores keep Σf² in `i128`, fast-AMS rows keep
//! Σc² in `i128`, sampler entries are `(u64, u64)` pairs), so a restored
//! structure must reproduce each query's `f64` down to the last bit — not
//! merely within ε.

use cora_core::{
    correlated_f2_seeded, CorrelatedF0, CorrelatedHeavyHitters, CorrelatedRarity,
    CorrelatedSketch, F2Aggregate,
};
use cora_stream::{
    windowed_f0, windowed_f2, DatasetGenerator, PaneConfig, UniformGenerator, WindowedF0,
    WindowedF2, ZipfGenerator,
};
use cora_tests::stream_len;

const Y_MAX: u64 = (1 << 18) - 1;
const SEED: u64 = 17;

/// The integration workloads: uniform and Zipf(1.1), as in the paper's
/// experiments.
fn workloads(n: usize) -> Vec<(&'static str, Vec<(u64, u64)>)> {
    let uniform = UniformGenerator::new(50_000, Y_MAX, SEED)
        .generate(n)
        .into_iter()
        .map(|t| (t.x, t.y))
        .collect();
    let zipf = ZipfGenerator::new(1.1, 50_000, Y_MAX, SEED)
        .generate(n)
        .into_iter()
        .map(|t| (t.x, t.y))
        .collect();
    vec![("uniform", uniform), ("zipf1.1", zipf)]
}

fn thresholds() -> Vec<u64> {
    (0..=16).map(|i| Y_MAX * i / 16).collect()
}

#[test]
fn f2_snapshot_restore_answers_bit_identically_and_merges() {
    for (name, tuples) in workloads(stream_len(30_000)) {
        let mut sketch = correlated_f2_seeded(0.2, 0.1, Y_MAX, 1_000_000, SEED).unwrap();
        for &(x, y) in &tuples {
            sketch.insert(x, y).unwrap();
        }
        let bytes = sketch.snapshot();
        let restored =
            CorrelatedSketch::restore_from(F2Aggregate::new(0.2, 0.1, SEED), &bytes).unwrap();
        for &c in &thresholds() {
            assert_eq!(
                restored.query(c).unwrap(),
                sketch.query(c).unwrap(),
                "{name}: f2 differs at c={c}"
            );
        }
        assert_eq!(restored.stats(), sketch.stats(), "{name}: stats differ");

        // restore → merge_from compatibility: merging a live shard into the
        // restored sketch equals merging it into the original.
        let mut shard = correlated_f2_seeded(0.2, 0.1, Y_MAX, 1_000_000, SEED).unwrap();
        for &(x, y) in tuples.iter().take(tuples.len() / 4) {
            shard.insert(x.wrapping_add(1_000_000), y).unwrap();
        }
        let mut via_original = sketch;
        let mut via_restored = restored;
        via_original.merge_from(&shard).unwrap();
        via_restored.merge_from(&shard).unwrap();
        for &c in &thresholds() {
            assert_eq!(
                via_restored.query(c).unwrap(),
                via_original.query(c).unwrap(),
                "{name}: merged f2 differs at c={c}"
            );
        }
    }
}

#[test]
fn f0_snapshot_restore_answers_bit_identically_and_merges() {
    for (name, tuples) in workloads(stream_len(30_000)) {
        let mut sketch = CorrelatedF0::with_seed(0.2, 0.05, 20, Y_MAX, SEED).unwrap();
        for &(x, y) in &tuples {
            sketch.insert(x, y).unwrap();
        }
        let restored = CorrelatedF0::restore_from(&sketch.snapshot()).unwrap();
        for &c in &thresholds() {
            assert_eq!(
                restored.query(c).unwrap(),
                sketch.query(c).unwrap(),
                "{name}: f0 differs at c={c}"
            );
        }
        let mut shard = CorrelatedF0::with_seed(0.2, 0.05, 20, Y_MAX, SEED).unwrap();
        for &(x, y) in tuples.iter().take(tuples.len() / 4) {
            shard.insert(x.wrapping_add(1_000_000), y).unwrap();
        }
        let mut via_original = sketch;
        let mut via_restored = restored;
        via_original.merge_from(&shard).unwrap();
        via_restored.merge_from(&shard).unwrap();
        for &c in &thresholds() {
            assert_eq!(
                via_restored.query(c).unwrap(),
                via_original.query(c).unwrap(),
                "{name}: merged f0 differs at c={c}"
            );
        }
    }
}

#[test]
fn rarity_snapshot_restore_answers_bit_identically_and_merges() {
    for (name, tuples) in workloads(stream_len(30_000)) {
        let mut sketch = CorrelatedRarity::with_seed(0.2, 20, Y_MAX, SEED).unwrap();
        for &(x, y) in &tuples {
            sketch.insert(x, y).unwrap();
        }
        let restored = CorrelatedRarity::restore_from(&sketch.snapshot()).unwrap();
        for &c in &thresholds() {
            assert_eq!(
                restored.query(c).unwrap(),
                sketch.query(c).unwrap(),
                "{name}: rarity differs at c={c}"
            );
        }
        let mut shard = CorrelatedRarity::with_seed(0.2, 20, Y_MAX, SEED).unwrap();
        for &(x, y) in tuples.iter().take(tuples.len() / 4) {
            shard.insert(x.wrapping_add(1_000_000), y).unwrap();
        }
        let mut via_original = sketch;
        let mut via_restored = restored;
        via_original.merge_from(&shard).unwrap();
        via_restored.merge_from(&shard).unwrap();
        for &c in &thresholds() {
            assert_eq!(
                via_restored.query(c).unwrap(),
                via_original.query(c).unwrap(),
                "{name}: merged rarity differs at c={c}"
            );
        }
    }
}

#[test]
fn heavy_hitters_snapshot_restore_answers_bit_identically_and_merges() {
    for (name, tuples) in workloads(stream_len(20_000)) {
        let mut sketch =
            CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.05, Y_MAX, 1_000_000, SEED).unwrap();
        for &(x, y) in &tuples {
            sketch.insert(x, y).unwrap();
        }
        // Plant an unambiguous heavy hitter.
        for i in 0..(tuples.len() as u64) {
            sketch.insert(99, i % 1_000).unwrap();
        }
        let restored = CorrelatedHeavyHitters::restore_from(&sketch.snapshot()).unwrap();
        for &c in &thresholds() {
            assert_eq!(
                restored.query_f2(c).unwrap(),
                sketch.query_f2(c).unwrap(),
                "{name}: hh f2 differs at c={c}"
            );
            assert_eq!(
                restored.query_heavy_hitters(c, 0.05).unwrap(),
                sketch.query_heavy_hitters(c, 0.05).unwrap(),
                "{name}: hh candidates differ at c={c}"
            );
        }
        let mut shard =
            CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.05, Y_MAX, 1_000_000, SEED).unwrap();
        for i in 0..2_000u64 {
            shard.insert(77, i % 4_096).unwrap();
        }
        let mut via_original = sketch;
        let mut via_restored = restored;
        via_original.merge_from(&shard).unwrap();
        via_restored.merge_from(&shard).unwrap();
        for &c in &thresholds() {
            assert_eq!(
                via_restored.query_heavy_hitters(c, 0.05).unwrap(),
                via_original.query_heavy_hitters(c, 0.05).unwrap(),
                "{name}: merged hh differ at c={c}"
            );
        }
    }
}

/// A windowed ring pair (F2 + F0) fed the same timestamped workload, for the
/// windowed roundtrip tests. Timestamps stride so panes of several classes
/// exist and rebalancing has happened.
fn windowed_pair(n: usize) -> (WindowedF2, WindowedF0) {
    let panes = PaneConfig::new(512);
    let mut wf2 = windowed_f2(0.25, 0.1, Y_MAX, 1_000_000, SEED, panes.clone()).unwrap();
    let mut wf0 = windowed_f0(0.25, 0.1, 20, Y_MAX, SEED, panes).unwrap();
    for t in UniformGenerator::new(50_000, Y_MAX, SEED)
        .generate(n)
        .into_iter()
        .enumerate()
        .map(|(i, t)| (t.x, t.y, (i as u64) * 3))
    {
        wf2.observe(t.0, t.1, t.2).unwrap();
        wf0.observe(t.0, t.1, t.2).unwrap();
    }
    (wf2, wf0)
}

#[test]
fn windowed_snapshot_restore_answers_bit_identically() {
    let (wf2, wf0) = windowed_pair(stream_len(20_000));
    let rf2 = WindowedF2::restore_from(F2Aggregate::new(0.25, 0.1, SEED), &wf2.snapshot()).unwrap();
    let rf0 = WindowedF0::restore_from(&wf0.snapshot()).unwrap();

    // Ring geometry and clocks restore exactly.
    assert_eq!(rf2.pane_spans(), wf2.pane_spans());
    assert_eq!(rf0.pane_spans(), wf0.pane_spans());
    assert_eq!(rf2.t_latest(), wf2.t_latest());
    assert_eq!(rf2.stored_tuples(), wf2.stored_tuples());

    // Sliding, landmark, and decayed answers are bit-identical, window by
    // window and threshold by threshold.
    let span = wf2.coverage().unwrap().1;
    for &window in &[span / 8, span / 3, span] {
        for &c in &thresholds() {
            assert_eq!(
                rf2.query_sliding(window, c).unwrap(),
                wf2.query_sliding(window, c).unwrap(),
                "windowed f2 differs at window={window} c={c}"
            );
            assert_eq!(
                rf0.query_sliding(window, c).unwrap(),
                wf0.query_sliding(window, c).unwrap(),
                "windowed f0 differs at window={window} c={c}"
            );
        }
    }
    for &landmark in &[0u64, span / 2] {
        assert_eq!(
            rf2.query_landmark(landmark, Y_MAX).unwrap(),
            wf2.query_landmark(landmark, Y_MAX).unwrap(),
            "windowed f2 landmark differs at {landmark}"
        );
    }
    for &lambda in &[1.0f64, 0.999] {
        assert_eq!(
            rf2.query_decayed(lambda, Y_MAX).unwrap(),
            wf2.query_decayed(lambda, Y_MAX).unwrap(),
            "windowed f2 decayed differs at lambda={lambda}"
        );
    }

    // The restored ring keeps ingesting: both sides observe one more pane's
    // worth of tuples and still agree.
    let (mut live, mut back) = (wf2, rf2);
    let t_next = live.t_latest().unwrap() + 1;
    for i in 0..600u64 {
        live.observe(i % 40, i % Y_MAX, t_next + i).unwrap();
        back.observe(i % 40, i % Y_MAX, t_next + i).unwrap();
    }
    assert_eq!(
        back.query_sliding(span, Y_MAX).unwrap(),
        live.query_sliding(span, Y_MAX).unwrap(),
        "windowed f2 diverges after post-restore ingest"
    );
}

#[test]
fn damaged_windowed_snapshots_are_rejected_before_decode() {
    let (wf2, wf0) = windowed_pair(stream_len(6_000));
    let restore_f2 = |bytes: &[u8]| -> bool {
        WindowedF2::restore_from(F2Aggregate::new(0.25, 0.1, SEED), bytes).is_ok()
    };
    let restore_f0 = |bytes: &[u8]| -> bool { WindowedF0::restore_from(bytes).is_ok() };
    type Case<'a> = (&'a str, Vec<u8>, &'a dyn Fn(&[u8]) -> bool);
    let cases: Vec<Case> = vec![
        ("windowed-f2", wf2.snapshot(), &restore_f2),
        ("windowed-f0", wf0.snapshot(), &restore_f0),
    ];
    for (name, bytes, restore) in &cases {
        assert!(restore(bytes), "{name}: pristine snapshot must restore");
        for cut in [1, 10, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(!restore(&bytes[..cut]), "{name}: truncation at {cut} accepted");
        }
        // A flipped byte anywhere — outer frame header, ring geometry, or
        // deep inside a nested pane frame — trips a checksum before any pane
        // is decoded into a live structure.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x20;
        assert!(!restore(&corrupt), "{name}: mid-payload corruption accepted");
        let mut tail = bytes.clone();
        let last = tail.len() - 9;
        tail[last] ^= 0x01;
        assert!(!restore(&tail), "{name}: tail corruption accepted");
        let mut future = bytes.clone();
        future[4] = 0xEE;
        assert!(!restore(&future), "{name}: future version accepted");
        // Cross-kind confusion: the other windowed snapshot and a plain
        // (un-windowed) snapshot are both refused by kind.
        for (other, other_bytes, _) in &cases {
            if other != name {
                assert!(!restore(other_bytes), "{name}: accepted a {other} snapshot");
            }
        }
    }
    let mut plain = correlated_f2_seeded(0.25, 0.1, Y_MAX, 1_000_000, SEED).unwrap();
    plain.insert(1, 1).unwrap();
    assert!(
        !restore_f2(&plain.snapshot()),
        "windowed-f2 accepted a plain f2 snapshot"
    );
}

#[test]
fn damaged_snapshots_are_rejected_for_every_aggregate() {
    let tuples: Vec<(u64, u64)> = (0..2_000u64).map(|i| (i % 100, (i * 37) % Y_MAX)).collect();

    let mut f2 = correlated_f2_seeded(0.3, 0.1, Y_MAX, 100_000, SEED).unwrap();
    let mut f0 = CorrelatedF0::with_seed(0.3, 0.1, 16, Y_MAX, SEED).unwrap();
    let mut rarity = CorrelatedRarity::with_seed(0.3, 16, Y_MAX, SEED).unwrap();
    let mut hh = CorrelatedHeavyHitters::with_seed(0.3, 0.1, 0.1, Y_MAX, 100_000, SEED).unwrap();
    for &(x, y) in &tuples {
        f2.insert(x, y).unwrap();
        f0.insert(x, y).unwrap();
        rarity.insert(x, y).unwrap();
        hh.insert(x, y).unwrap();
    }

    let snapshots: Vec<(&str, Vec<u8>)> = vec![
        ("f2", f2.snapshot()),
        ("f0", f0.snapshot()),
        ("rarity", rarity.snapshot()),
        ("hh", hh.snapshot()),
    ];
    let restore = |name: &str, bytes: &[u8]| -> bool {
        match name {
            "f2" => CorrelatedSketch::restore_from(F2Aggregate::new(0.3, 0.1, SEED), bytes).is_ok(),
            "f0" => CorrelatedF0::restore_from(bytes).is_ok(),
            "rarity" => CorrelatedRarity::restore_from(bytes).is_ok(),
            "hh" => CorrelatedHeavyHitters::restore_from(bytes).is_ok(),
            _ => unreachable!(),
        }
    };
    for (name, bytes) in &snapshots {
        assert!(restore(name, bytes), "{name}: pristine snapshot must restore");
        // Truncated at several points.
        for cut in [1, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(!restore(name, &bytes[..cut]), "{name}: truncation at {cut} accepted");
        }
        // A flipped payload byte (checksum catches it).
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x20;
        assert!(!restore(name, &corrupt), "{name}: corruption accepted");
        // Wrong format version.
        let mut future = bytes.clone();
        future[4] = 0xEE;
        assert!(!restore(name, &future), "{name}: future version accepted");
        // Wrong kind: every snapshot must reject every other aggregate's.
        for (other, other_bytes) in &snapshots {
            if other != name {
                assert!(
                    !restore(name, other_bytes),
                    "{name}: accepted a {other} snapshot"
                );
            }
        }
    }
}
