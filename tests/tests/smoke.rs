//! Fast end-to-end smoke test: one correlated-F2 sketch, one small Zipf
//! stream, estimates within the requested `(ε, δ)` bound at every probed
//! threshold. This is the test CI runs first; the exhaustive version over all
//! generators lives in `end_to_end_accuracy.rs`.

use cora_core::correlated_f2_seeded;
use cora_stream::{default_thresholds, DatasetGenerator, ZipfGenerator};
use cora_tests::{ingest_with_baseline, relative_error};

#[test]
fn correlated_f2_meets_its_epsilon_bound_on_a_small_zipf_stream() {
    let (epsilon, delta) = (0.2, 0.05);
    let n = 10_000usize;
    let mut generator = ZipfGenerator::new(1.1, 20_000, 100_000, 42);
    let y_max = generator.y_max();
    let tuples = generator.generate(n);

    let mut sketch = correlated_f2_seeded(epsilon, delta, y_max, n as u64, 7).unwrap();
    let exact = ingest_with_baseline(&tuples, |t| sketch.insert(t.x, t.y).unwrap());

    for c in default_thresholds(y_max, 5) {
        let truth = exact.frequency_moment(2, c);
        if truth == 0.0 {
            continue;
        }
        let err = relative_error(sketch.query(c).unwrap(), truth);
        assert!(
            err <= epsilon,
            "F2 estimate at threshold c={c} off by {err} (> epsilon {epsilon})"
        );
    }
}
