//! End-to-end serving-layer checks against the library structures: the
//! server's synchronously-updated sketches must answer exactly like
//! directly-built ones (same seed, same stream), the published composite
//! must converge to the flushed state, and a snapshot file must survive a
//! full process-style restart through `start_restored`.

use cora_core::{CorrelatedF0, CorrelatedHeavyHitters, CorrelatedRarity};
use cora_serve::client::{ServeClient, WindowAnswer};
use cora_serve::server::{start, start_restored, ServeConfig};
use cora_tests::stream_len;

const Y_MAX: u64 = (1 << 14) - 1;

fn config() -> ServeConfig {
    ServeConfig {
        epsilon: 0.25,
        delta: 0.1,
        y_max: Y_MAX,
        max_stream_len: 1_000_000,
        seed: 23,
        shards: 2,
        merge_every: 3,
        phi: 0.05,
        x_domain_log2: 18,
        pane_ticks: 512,
        pane_k: 4,
        pane_retention: None,
        max_connections: 1_024,
        durability: None,
        auth_token: None,
        replicate: None,
    }
}

fn stream(n: usize) -> Vec<(u64, u64)> {
    (0..n as u64)
        .map(|i| (i % 3_000, (i * 193) % (Y_MAX + 1)))
        .collect()
}

#[test]
fn served_aux_queries_equal_directly_built_sketches() {
    let n = stream_len(20_000);
    let tuples = stream(n);
    let cfg = config();

    // Direct library twins of the server's auxiliary sketches.
    let mut f0 = CorrelatedF0::with_seed(cfg.epsilon, cfg.delta, cfg.x_domain_log2, Y_MAX, cfg.seed)
        .unwrap();
    let mut rarity =
        CorrelatedRarity::with_seed(cfg.epsilon, cfg.x_domain_log2, Y_MAX, cfg.seed).unwrap();
    let mut hh = CorrelatedHeavyHitters::with_seed(
        cfg.epsilon,
        cfg.delta,
        cfg.phi,
        Y_MAX,
        cfg.max_stream_len,
        cfg.seed,
    )
    .unwrap();
    for &(x, y) in &tuples {
        f0.insert(x, y).unwrap();
        rarity.insert(x, y).unwrap();
        hh.insert(x, y).unwrap();
    }

    let server = start(cfg, "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    for chunk in tuples.chunks(1_500) {
        client.ingest(chunk).unwrap();
    }
    client.flush().unwrap();

    for c in (0..=Y_MAX).step_by((Y_MAX as usize / 8).max(1)) {
        assert_eq!(client.query_f0(c).unwrap(), f0.query(c).unwrap(), "f0 at c={c}");
        assert_eq!(
            client.query_rarity(c).unwrap(),
            rarity.query(c).unwrap(),
            "rarity at c={c}"
        );
        let served = client.query_heavy_hitters(c, 0.05).unwrap();
        let direct = hh.query_heavy_hitters(c, 0.05).unwrap();
        assert_eq!(served.len(), direct.len(), "hh count at c={c}");
        for (s, d) in served.iter().zip(&direct) {
            assert_eq!((s.item, s.frequency, s.share), (d.item, d.frequency, d.share));
        }
    }
    // The flushed composite covers the full stream.
    let stats = client.stats().unwrap();
    assert_eq!(stats.u64_field("composite_items").unwrap(), n as u64);
    assert_eq!(stats.u64_field("staleness_batches").unwrap(), 0);
    drop(client);
    server.shutdown();
}

#[test]
fn snapshot_file_survives_restart_with_identical_answers() {
    let tuples = stream(stream_len(10_000));
    let server = start(config(), "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    for chunk in tuples.chunks(1_000) {
        client.ingest(chunk).unwrap();
    }
    client.flush().unwrap();
    let cs: Vec<u64> = (0..=8).map(|i| Y_MAX * i / 8).collect();
    let f2: Vec<f64> = cs.iter().map(|&c| client.query_f2(c).unwrap()).collect();
    let f0: Vec<f64> = cs.iter().map(|&c| client.query_f0(c).unwrap()).collect();
    // Two-dimensional slices: (tick window, y threshold) across several
    // window widths, captured pre-snapshot for post-restart comparison.
    let windows: Vec<u64> = vec![1_024, 4_096, 1 << 20];
    let wf2: Vec<WindowAnswer> = windows
        .iter()
        .flat_map(|&w| cs.iter().map(move |&c| (w, c)))
        .map(|(w, c)| client.query_window_f2(w, c).unwrap())
        .collect();
    let wf0: Vec<WindowAnswer> = windows
        .iter()
        .flat_map(|&w| cs.iter().map(move |&c| (w, c)))
        .map(|(w, c)| client.query_window_f0(w, c).unwrap())
        .collect();

    let dir = std::env::temp_dir().join(format!("cora_serve_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.snap");
    client.snapshot(path.to_str().unwrap()).unwrap();
    drop(client);
    server.shutdown();

    let bundle = std::fs::read(&path).unwrap();
    let restored = start_restored(config(), "127.0.0.1:0", &bundle).unwrap();
    let mut client = ServeClient::connect(restored.local_addr()).unwrap();
    client.flush().unwrap();
    for (i, &c) in cs.iter().enumerate() {
        assert_eq!(client.query_f2(c).unwrap(), f2[i], "f2 at c={c}");
        assert_eq!(client.query_f0(c).unwrap(), f0[i], "f0 at c={c}");
    }
    // Windowed answers — estimate and resolved span — survive the restart
    // bit-identically too: the pane rings and the tick clock were bundled.
    for (i, (w, c)) in windows
        .iter()
        .flat_map(|&w| cs.iter().map(move |&c| (w, c)))
        .enumerate()
    {
        assert_eq!(
            client.query_window_f2(w, c).unwrap(),
            wf2[i],
            "windowed f2 at window={w} c={c}"
        );
        assert_eq!(
            client.query_window_f0(w, c).unwrap(),
            wf0[i],
            "windowed f0 at window={w} c={c}"
        );
    }
    drop(client);
    restored.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_window_frames_fail_restore_before_decode() {
    // Damage specifically inside the bundle's windowed sections: the restore
    // must fail cleanly (no partial server) for any cut or flip in the last
    // two sections, which hold the pane rings.
    let server = start(config(), "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client
        .ingest(&(0..3_000u64).map(|i| (i % 100, (i * 7) % (Y_MAX + 1))).collect::<Vec<_>>())
        .unwrap();
    let dir = std::env::temp_dir().join(format!("cora_serve_wf_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.snap");
    client.snapshot(path.to_str().unwrap()).unwrap();
    drop(client);
    server.shutdown();

    let bundle = std::fs::read(&path).unwrap();
    assert!(start_restored(config(), "127.0.0.1:0", &bundle).is_ok());
    // Truncations ending inside the windowed tail of the bundle.
    for frac in [1, 2, 5, 20] {
        let cut = bundle.len() - bundle.len() / (frac * 10) - 1;
        assert!(
            start_restored(config(), "127.0.0.1:0", &bundle[..cut]).is_err(),
            "truncation to {cut}/{} accepted",
            bundle.len()
        );
    }
    // Flipped bytes in the windowed tail trip the nested pane checksums.
    for back in [9usize, bundle.len() / 20, bundle.len() / 10] {
        let mut corrupt = bundle.clone();
        let idx = corrupt.len() - 1 - back;
        corrupt[idx] ^= 0x40;
        assert!(
            start_restored(config(), "127.0.0.1:0", &corrupt).is_err(),
            "flip at {idx}/{} accepted",
            corrupt.len()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
