//! Integration tests for the Section 3.3 extensions (heavy hitters, rarity)
//! and property-based tests on cross-crate invariants.

use cora_core::{correlated_f2_seeded, CorrelatedHeavyHitters, CorrelatedRarity, ExactCorrelated};
use proptest::prelude::*;

#[test]
fn heavy_hitters_match_exact_on_a_planted_workload() {
    let y_max = 65_535u64;
    let mut hh = CorrelatedHeavyHitters::with_seed(0.2, 0.05, 0.05, y_max, 200_000, 3).unwrap();
    let mut exact = ExactCorrelated::new();
    // Three planted heavy destinations dominating different y ranges.
    for i in 0..30_000u64 {
        let (x, y) = match i % 3 {
            0 => (111, i % 20_000),
            1 => (222, 20_000 + (i % 20_000)),
            _ => (5_000 + (i % 2_000), (i * 7) % (y_max + 1)),
        };
        hh.insert(x, y).unwrap();
        exact.insert(x, y);
    }
    for &c in &[20_000u64, y_max] {
        let expected: Vec<u64> = exact
            .f2_heavy_hitters(c, 0.1)
            .into_iter()
            .map(|(x, _)| x)
            .collect();
        let got: Vec<u64> = hh
            .query_heavy_hitters(c, 0.1)
            .unwrap()
            .into_iter()
            .map(|h| h.item)
            .collect();
        for item in &expected {
            assert!(
                got.contains(item),
                "c={c}: exact heavy hitter {item} missing from sketch answer {got:?}"
            );
        }
    }
}

#[test]
fn rarity_tracks_exact_as_duplicates_accumulate() {
    let y_max = 1_000_000u64;
    let mut sketch = CorrelatedRarity::with_seed(0.15, 18, y_max, 9).unwrap();
    let mut exact = ExactCorrelated::new();
    for x in 0..30_000u64 {
        let y1 = (x * 29) % y_max;
        sketch.insert(x, y1).unwrap();
        exact.insert(x, y1);
        if x % 4 == 0 {
            let y2 = (x * 53) % y_max;
            sketch.insert(x, y2).unwrap();
            exact.insert(x, y2);
        }
    }
    for &c in &[y_max / 2, y_max] {
        let truth = exact.rarity(c);
        let est = sketch.query(c).unwrap();
        assert!(
            (est - truth).abs() < 0.1,
            "rarity at c={c}: est {est}, truth {truth}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On any small stream the correlated F2 sketch answers every threshold
    /// exactly (everything fits in the singleton level).
    #[test]
    fn small_streams_are_answered_exactly(
        tuples in prop::collection::vec((0u64..50, 0u64..256), 1..120),
        c in 0u64..256,
    ) {
        let mut sketch = correlated_f2_seeded(0.3, 0.1, 255, 1_000, 7).unwrap();
        let mut exact = ExactCorrelated::new();
        for &(x, y) in &tuples {
            sketch.insert(x, y).unwrap();
            exact.insert(x, y);
        }
        let est = sketch.query(c).unwrap();
        let truth = exact.frequency_moment(2, c);
        prop_assert!((est - truth).abs() < 1e-9, "est {} truth {}", est, truth);
    }

    /// Correlated estimates are monotone-ish in the threshold and never exceed
    /// the whole-stream estimate by more than the sketch's own noise.
    #[test]
    fn estimates_bounded_by_whole_stream(
        tuples in prop::collection::vec((0u64..200, 0u64..1024), 200..600),
        c in 0u64..1024,
    ) {
        let mut sketch = correlated_f2_seeded(0.25, 0.1, 1023, 10_000, 11).unwrap();
        for &(x, y) in &tuples {
            sketch.insert(x, y).unwrap();
        }
        let partial = sketch.query(c).unwrap();
        let full = sketch.query(1023).unwrap();
        prop_assert!(partial <= full * 1.3 + 1.0,
            "partial estimate {} exceeds whole-stream estimate {}", partial, full);
    }

    /// The F0 sketch never reports more distinct items than tuples inserted,
    /// and reports zero for thresholds below every y.
    #[test]
    fn f0_sanity_bounds(
        tuples in prop::collection::vec((0u64..10_000, 10u64..100_000), 1..400),
    ) {
        let mut sketch = cora_core::CorrelatedF0::with_seed(0.2, 0.1, 16, 100_000, 3).unwrap();
        for &(x, y) in &tuples {
            sketch.insert(x, y).unwrap();
        }
        let est = sketch.query(100_000).unwrap();
        prop_assert!(est <= 4.0 * tuples.len() as f64 + 1.0);
        prop_assert_eq!(sketch.query(0).unwrap(), 0.0);
    }

    /// On a small stream the heavy-hitters structure's composed store is the
    /// exact frequency vector, so its answers must agree item-for-item with
    /// an exact recomputation at every threshold and share level.
    #[test]
    fn heavy_hitters_match_exact_recomputation_on_small_streams(
        tuples in prop::collection::vec((0u64..60, 0u64..1024), 1..180),
        c in 0u64..1024,
        phi_percent in 2u32..40,
    ) {
        let phi = f64::from(phi_percent) / 100.0;
        let mut hh = CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.02, 1023, 10_000, 5).unwrap();
        let mut exact = ExactCorrelated::new();
        for &(x, y) in &tuples {
            hh.insert(x, y).unwrap();
            exact.insert(x, y);
        }
        let expected: Vec<u64> = exact
            .f2_heavy_hitters(c, phi)
            .into_iter()
            .map(|(x, _)| x)
            .collect();
        let got = hh.query_heavy_hitters(c, phi).unwrap();
        let got_items: Vec<u64> = got.iter().map(|h| h.item).collect();
        for item in &expected {
            prop_assert!(
                got_items.contains(item),
                "exact heavy hitter {} missing at c={}, phi={}: {:?}",
                item, c, phi, got_items
            );
        }
        for h in &got {
            prop_assert!(
                expected.contains(&h.item),
                "spurious heavy hitter {} at c={}, phi={}: expected {:?}",
                h.item, c, phi, expected
            );
            // Frequencies reported from the exact store are exact.
            let f = exact.frequencies_upto(c).frequency(h.item) as f64;
            prop_assert!((h.frequency - f).abs() < 1e-9);
        }
    }

    /// On a small stream (few distinct identifiers, below every sampling
    /// level's capacity) the rarity sketch is exact at every threshold.
    #[test]
    fn rarity_is_exact_on_small_streams(
        tuples in prop::collection::vec((0u64..120, 0u64..4096), 1..250),
        c in 0u64..4096,
    ) {
        let mut sketch = CorrelatedRarity::with_seed(0.2, 16, 4095, 11).unwrap();
        let mut exact = ExactCorrelated::new();
        for &(x, y) in &tuples {
            sketch.insert(x, y).unwrap();
            exact.insert(x, y);
        }
        let est = sketch.query(c).unwrap();
        prop_assert!((0.0..=1.0).contains(&est), "rarity {} outside [0,1]", est);
        let truth = exact.rarity(c);
        prop_assert!(
            (est - truth).abs() < 1e-9,
            "rarity at c={}: est {}, exact {}", c, est, truth
        );
    }
}
