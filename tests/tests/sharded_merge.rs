//! Property tests for sketch-level merging and the worker-sharded ingest
//! front-end: partitioning a stream across shards and merging the per-shard
//! structures must answer queries identically (exact stores, small streams)
//! or within the accuracy envelope (sketched stores, large streams) of
//! sequential ingest.

use cora_core::{
    correlated_count, correlated_f2_seeded, CorrelatedF0, CorrelatedHeavyHitters,
    CorrelatedRarity, ExactCorrelated,
};
use cora_stream::sharded_correlated_f2;
use cora_tests::{relative_error, stream_len};
use proptest::prelude::*;

/// Round-robin partition of a tuple stream into `shards` sub-streams.
fn partition(tuples: &[(u64, u64)], shards: usize) -> Vec<Vec<(u64, u64)>> {
    let mut out = vec![Vec::new(); shards];
    for (i, &t) in tuples.iter().enumerate() {
        out[i % shards].push(t);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// F2: on small streams every bucket store is exact and level 0 answers,
    /// so shard-then-merge must equal sequential insert bit-for-bit.
    #[test]
    fn f2_shard_then_merge_equals_sequential(
        tuples in prop::collection::vec((0u64..60, 0u64..1024), 1..200),
        shards in 2usize..5,
        c in 0u64..1024,
    ) {
        let build = || correlated_f2_seeded(0.3, 0.1, 1023, 10_000, 7).unwrap();
        let mut seq = build();
        for &(x, y) in &tuples {
            seq.insert(x, y).unwrap();
        }
        let mut merged = build();
        for part in partition(&tuples, shards) {
            let mut shard = build();
            for (x, y) in part {
                shard.insert(x, y).unwrap();
            }
            merged.merge_from(&shard).unwrap();
            // Structural invariants (SoA leaf tiling, predecessor index,
            // eviction-set consistency) must survive every merge.
            merged.check_invariants();
        }
        prop_assert_eq!(merged.items_processed(), seq.items_processed());
        prop_assert_eq!(merged.query(c).unwrap(), seq.query(c).unwrap());
    }

    /// Count: the scalar-counter aggregate is exact at every level, so
    /// shard-then-merge answers match sequential ingest on small streams.
    #[test]
    fn count_shard_then_merge_equals_sequential(
        tuples in prop::collection::vec((0u64..100, 0u64..512), 1..250),
        shards in 2usize..5,
        c in 0u64..512,
    ) {
        let build = || correlated_count(0.3, 0.1, 511, 10_000).unwrap();
        let mut seq = build();
        for &(x, y) in &tuples {
            seq.insert(x, y).unwrap();
        }
        let mut merged = build();
        for part in partition(&tuples, shards) {
            let mut shard = build();
            for (x, y) in part {
                shard.insert(x, y).unwrap();
            }
            merged.merge_from(&shard).unwrap();
            merged.check_invariants();
        }
        prop_assert_eq!(merged.query(c).unwrap(), seq.query(c).unwrap());
    }

    /// F0: below the sampler capacities the retained samples are an
    /// order-independent function of the stream, so merge equals sequential.
    #[test]
    fn f0_shard_then_merge_equals_sequential(
        tuples in prop::collection::vec((0u64..80, 0u64..100_000), 1..150),
        shards in 2usize..4,
        c in 0u64..100_000,
    ) {
        let build = || CorrelatedF0::with_seed(0.2, 0.1, 16, 100_000, 3).unwrap();
        let mut seq = build();
        for &(x, y) in &tuples {
            seq.insert(x, y).unwrap();
        }
        let mut merged = build();
        for part in partition(&tuples, shards) {
            let mut shard = build();
            for (x, y) in part {
                shard.insert(x, y).unwrap();
            }
            merged.merge_from(&shard).unwrap();
        }
        prop_assert_eq!(merged.query(c).unwrap(), seq.query(c).unwrap());
    }

    /// Heavy hitters: small streams stay exact, so the merged structure must
    /// report the same heavy set as sequential ingest.
    #[test]
    fn heavy_hitters_shard_then_merge_equals_sequential(
        tuples in prop::collection::vec((0u64..40, 0u64..1024), 1..160),
        shards in 2usize..4,
        c in 0u64..1024,
        phi_percent in 2u32..40,
    ) {
        let phi = f64::from(phi_percent) / 100.0;
        let build = || CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.02, 1023, 10_000, 5).unwrap();
        let mut seq = build();
        for &(x, y) in &tuples {
            seq.insert(x, y).unwrap();
        }
        let mut merged = build();
        for part in partition(&tuples, shards) {
            let mut shard = build();
            for (x, y) in part {
                shard.insert(x, y).unwrap();
            }
            merged.merge_from(&shard).unwrap();
        }
        let seq_hh: Vec<u64> = seq
            .query_heavy_hitters(c, phi)
            .unwrap()
            .into_iter()
            .map(|h| h.item)
            .collect();
        let merged_hh: Vec<u64> = merged
            .query_heavy_hitters(c, phi)
            .unwrap()
            .into_iter()
            .map(|h| h.item)
            .collect();
        prop_assert_eq!(merged_hh, seq_hh);
    }

    /// Rarity: pairs of occurrences may be torn across shards; the merged
    /// two-smallest-y records must still equal the sequential ones.
    #[test]
    fn rarity_shard_then_merge_equals_sequential(
        tuples in prop::collection::vec((0u64..50, 0u64..100_000), 1..150),
        shards in 2usize..4,
        c in 0u64..100_000,
    ) {
        let build = || CorrelatedRarity::with_seed(0.2, 16, 100_000, 3).unwrap();
        let mut seq = build();
        for &(x, y) in &tuples {
            seq.insert(x, y).unwrap();
        }
        let mut merged = build();
        for part in partition(&tuples, shards) {
            let mut shard = build();
            for (x, y) in part {
                shard.insert(x, y).unwrap();
            }
            merged.merge_from(&shard).unwrap();
        }
        prop_assert_eq!(merged.query(c).unwrap(), seq.query(c).unwrap());
    }

    /// The threaded front-end is just "partition + merge" behind SPSC rings:
    /// after a flush it must agree exactly with sequential ingest on small
    /// streams, for any shard count and batch size.
    #[test]
    fn sharded_ingest_equals_sequential_on_small_streams(
        tuples in prop::collection::vec((0u64..60, 0u64..1024), 1..200),
        shards in 1usize..5,
        batch in 1usize..96,
        c in 0u64..1024,
    ) {
        let mut seq = correlated_f2_seeded(0.3, 0.1, 1023, 10_000, 7).unwrap();
        for &(x, y) in &tuples {
            seq.insert(x, y).unwrap();
        }
        let mut sharded = sharded_correlated_f2(0.3, 0.1, 1023, 10_000, 7, shards)
            .unwrap()
            .with_batch_size(batch);
        sharded.ingest(&tuples).unwrap();
        sharded.flush();
        // The composite is itself a merge product: check its structure too.
        sharded
            .with_composite(|composite| composite.check_invariants())
            .unwrap();
        prop_assert_eq!(sharded.query(c).unwrap(), seq.query(c).unwrap());
    }
}

/// Merge must reject structures built with different seeds or configurations
/// — mirroring the store-level `merge_rejects_mismatch` tests in cora-sketch.
#[test]
fn sketch_level_merges_reject_mismatches() {
    let mut f2_a = correlated_f2_seeded(0.25, 0.1, 1023, 10_000, 1).unwrap();
    let f2_seed = correlated_f2_seeded(0.25, 0.1, 1023, 10_000, 2).unwrap();
    let f2_eps = correlated_f2_seeded(0.2, 0.1, 1023, 10_000, 1).unwrap();
    let f2_domain = correlated_f2_seeded(0.25, 0.1, 2047, 10_000, 1).unwrap();
    assert!(f2_a.merge_from(&f2_seed).is_err());
    assert!(f2_a.merge_from(&f2_eps).is_err());
    assert!(f2_a.merge_from(&f2_domain).is_err());

    let mut f0_a = CorrelatedF0::with_seed(0.2, 0.1, 16, 1000, 1).unwrap();
    let f0_seed = CorrelatedF0::with_seed(0.2, 0.1, 16, 1000, 2).unwrap();
    assert!(f0_a.merge_from(&f0_seed).is_err());

    let mut rarity_a = CorrelatedRarity::with_seed(0.2, 16, 1000, 1).unwrap();
    let rarity_seed = CorrelatedRarity::with_seed(0.2, 16, 1000, 2).unwrap();
    assert!(rarity_a.merge_from(&rarity_seed).is_err());

    let mut hh_a = CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.05, 1023, 10_000, 1).unwrap();
    let hh_seed = CorrelatedHeavyHitters::with_seed(0.2, 0.1, 0.05, 1023, 10_000, 2).unwrap();
    assert!(hh_a.merge_from(&hh_seed).is_err());
}

/// Large-stream accuracy: once buckets sketch and levels materialize, the
/// 4-way sharded front-end must stay within the accuracy envelope of the
/// exact answer — the ε-composition claim behind the scale-out design.
#[test]
fn sharded_ingest_stays_accurate_on_large_streams() {
    let n = stream_len(40_000);
    let y_max = 65_535u64;
    let epsilon = 0.2;
    let mut sharded =
        sharded_correlated_f2(epsilon, 0.05, y_max, n as u64, 11, 4).unwrap();
    let mut exact = ExactCorrelated::new();
    let mut state = 0x5EEDu64;
    for i in 0..n as u64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = ((state >> 33) % 2_000) / ((i % 5) + 1); // mild skew
        let y = (state >> 13) % (y_max + 1);
        sharded.insert(x, y).unwrap();
        exact.insert(x, y);
    }
    sharded.flush();
    assert_eq!(sharded.stats().unwrap().items_processed, n as u64);
    for &c in &[y_max / 8, y_max / 2, y_max] {
        let truth = exact.frequency_moment(2, c);
        let est = sharded.query(c).unwrap();
        let err = relative_error(est, truth);
        // 4-way composition may inflate the boundary-omission term; the
        // merged answer must still land within a small multiple of ε.
        assert!(
            err < 2.0 * epsilon,
            "c={c}: estimate {est}, truth {truth}, err {err}"
        );
    }
}
