//! Cross-crate integration tests for the turnstile-model machinery (multipass,
//! lower-bound instances), the asynchronous sliding-window reduction, and the
//! pane-ring windowed structures checked against an exact replay oracle.

use cora_core::{CoreError, ExactCorrelated};
use cora_stream::{
    greater_than_instance, multipass_f2, solve_exactly, windowed_count, windowed_f0, windowed_f2,
    AsyncWindowCount, PaneConfig, StoredStream, StreamTuple,
};
use cora_tests::{stream_len, WindowOracle};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

#[test]
fn multipass_agrees_with_exact_correlated_f2_under_deletions() {
    let mut rng = StdRng::seed_from_u64(17);
    let y_max = 8_191u64;
    let mut tuples = Vec::new();
    for _ in 0..30_000 {
        let x = rng.gen_range(0..300u64);
        let y = rng.gen_range(0..=y_max);
        tuples.push(StreamTuple::weighted(x, y, 1));
    }
    // Delete a third of the insertions again.
    for i in (0..tuples.len()).step_by(3) {
        let t = tuples[i];
        tuples.push(StreamTuple::weighted(t.x, t.y, -1));
    }
    let stream = StoredStream::new(tuples);
    let eps = 0.2;
    let estimator = multipass_f2(&stream, eps, 0.05, y_max, 23);
    assert!(estimator.passes_used() <= 16, "too many passes: {}", estimator.passes_used());

    let mut exact = ExactCorrelated::new();
    for t in stream.tuples() {
        exact.update(t.x, t.y, t.weight);
    }
    for &tau in &[y_max / 4, y_max / 2, y_max] {
        let truth = exact.frequency_moment(2, tau);
        let est = estimator.query(tau);
        let err = (est - truth).abs() / truth.max(1.0);
        assert!(
            err < 3.0 * eps,
            "tau={tau}: multipass {est} vs exact {truth} (err {err})"
        );
    }
}

#[test]
fn greater_than_instances_are_decided_by_correlated_queries() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..200 {
        let bits = rng.gen_range(2..20u32);
        let a = rng.gen_range(0..(1u64 << bits));
        let b = rng.gen_range(0..(1u64 << bits));
        let stream = greater_than_instance(a, b, bits);
        assert_eq!(solve_exactly(&stream, bits), a.cmp(&b), "a={a} b={b} bits={bits}");
    }
}

#[test]
fn async_window_count_matches_brute_force_across_windows() {
    let t_max = 500_000u64;
    let n = 50_000u64;
    let mut window = AsyncWindowCount::new(0.2, 0.05, t_max, n, 13).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let mut events = Vec::new();
    for i in 0..n {
        let t = rng.gen_range(0..=t_max);
        events.push(t);
        window.observe(i % 1_000, t).unwrap();
    }
    for &w in &[50_000u64, 200_000, 500_000] {
        let truth = events.iter().filter(|&&t| t >= t_max - w).count() as f64;
        let est = window.query_window(t_max, w).unwrap();
        let err = (est - truth).abs() / truth;
        assert!(err < 0.25, "window {w}: est {est}, truth {truth}");
    }
}

/// One random `(x, y, t)` stream shared by the windowed property tests:
/// timestamps uniform over `[0, t_span)`, observed in shuffled order.
fn windowed_stream(n: usize, t_span: u64, y_max: u64, seed: u64) -> Vec<(u64, u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events: Vec<(u64, u64, u64)> = (0..n)
        .map(|_| {
            (
                rng.gen_range(0..400u64),
                rng.gen_range(0..=y_max),
                rng.gen_range(0..t_span),
            )
        })
        .collect();
    events.shuffle(&mut rng);
    events
}

#[test]
fn windowed_sliding_queries_match_the_oracle_at_the_configured_rate() {
    let (eps, delta) = (0.25, 0.2);
    let y_max = 1_023u64;
    let t_span = 8_192u64;
    let n = stream_len(20_000);
    let panes = PaneConfig::new(128);
    let mut f2 = windowed_f2(eps, delta, y_max, n as u64, 11, panes.clone()).unwrap();
    let mut f0 = windowed_f0(eps, delta, 16, y_max, 11, panes.clone()).unwrap();
    let mut count = windowed_count(eps, delta, y_max, n as u64, 11, panes).unwrap();
    let mut oracle = WindowOracle::new();
    for &(x, y, t) in &windowed_stream(n, t_span, y_max, 29) {
        f2.observe(x, y, t).unwrap();
        f0.observe(x, y, t).unwrap();
        count.observe(x, y, t).unwrap();
        oracle.observe(x, y, t);
    }

    // Random window widths, query times, and thresholds; each estimate is
    // judged against the exact aggregate of the pane-aligned span the ring
    // resolved, so only sketch error (never pane quantization) counts.
    let mut rng = StdRng::seed_from_u64(31);
    let t_latest = f2.t_latest().unwrap();
    let mut checks = 0usize;
    let mut misses = 0usize;
    for trial in 0..40 {
        let window = rng.gen_range(256..=t_span);
        let now = if trial % 2 == 0 {
            t_latest
        } else {
            rng.gen_range(t_span / 2..t_span)
        };
        let c = rng.gen_range(y_max / 8..=y_max);
        let Some((lo, hi)) = f2.resolved_window(now, window).unwrap() else {
            continue;
        };
        // All three rings saw the same observe sequence with the same pane
        // geometry, so they resolve identical spans.
        assert_eq!(count.resolved_window(now, window).unwrap(), Some((lo, hi)));
        assert_eq!(f0.resolved_window(now, window).unwrap(), Some((lo, hi)));
        for (est, truth) in [
            (f2.query_at(now, window, c).unwrap(), oracle.f2(lo, hi, c)),
            (f0.query_at(now, window, c).unwrap(), oracle.f0(lo, hi, c)),
            (count.query_at(now, window, c).unwrap(), oracle.count(lo, hi, c)),
        ] {
            if truth < 20.0 {
                continue;
            }
            checks += 1;
            if (est - truth).abs() / truth > eps {
                misses += 1;
            }
        }
    }
    assert!(checks >= 60, "degenerate trial set: only {checks} checks");
    let allowed = ((checks as f64) * delta).ceil() as usize;
    assert!(
        misses <= allowed,
        "windowed queries out of eps={eps} band {misses}/{checks} times (allowed {allowed})"
    );
}

#[test]
fn windowed_landmark_and_decayed_queries_match_the_oracle() {
    let eps = 0.25;
    let y_max = 511u64;
    let t_span = 4_096u64;
    let n = stream_len(12_000);
    let panes = PaneConfig::new(64);
    let mut ring = windowed_f2(eps, 0.1, y_max, n as u64, 17, panes).unwrap();
    let mut oracle = WindowOracle::new();
    for &(x, y, t) in &windowed_stream(n, t_span, y_max, 43) {
        ring.observe(x, y, t).unwrap();
        oracle.observe(x, y, t);
    }
    let t_latest = ring.t_latest().unwrap();

    // Landmark queries at three cut points, two thresholds each.
    let mut checks = 0usize;
    let mut misses = 0usize;
    for &landmark in &[0u64, t_span / 3, (3 * t_span) / 4] {
        let window = t_latest + 1 - landmark;
        let (lo, hi) = ring.resolved_window(t_latest, window).unwrap().unwrap();
        assert!(lo >= landmark, "resolved span must not reach before the landmark");
        for &c in &[y_max / 2, y_max] {
            let est = ring.query_landmark(landmark, c).unwrap();
            let truth = oracle.f2(lo, hi, c);
            checks += 1;
            if (est - truth).abs() / truth.max(1.0) > eps {
                misses += 1;
            }
        }
    }

    // Decayed variant: fold each pane with weight λ^age and compare against
    // the oracle's exactly-weighted union, for three fading factors.
    let spans = ring.pane_spans();
    for &lambda in &[1.0f64, 0.999, 0.995] {
        let weighted: Vec<(u64, u64, f64)> = spans
            .iter()
            .map(|&(s, e, _)| (s, e, ring.decay_weight(lambda, e)))
            .collect();
        for &c in &[y_max / 2, y_max] {
            let est = ring.query_decayed(lambda, c).unwrap();
            let truth = oracle.decayed_f2(&weighted, c);
            checks += 1;
            if (est - truth).abs() / truth.max(1.0) > eps {
                misses += 1;
            }
        }
    }
    assert!(
        misses <= 2,
        "landmark/decayed estimates out of band {misses}/{checks} times"
    );
}

#[test]
fn pane_seal_and_retention_boundaries_are_pinned() {
    // Query exactly at a pane seal: ticks 0..48 fill three 16-tick panes, and
    // windows that are pane multiples resolve to exactly the requested span.
    let mut ring = windowed_count(0.2, 0.1, 255, 10_000, 5, PaneConfig::new(16)).unwrap();
    let mut oracle = WindowOracle::new();
    for t in 0..48u64 {
        ring.observe(t % 10, t % 256, t).unwrap();
        oracle.observe(t % 10, t % 256, t);
    }
    assert_eq!(ring.resolved_window(47, 16).unwrap(), Some((32, 48)));
    assert_eq!(ring.resolved_window(47, 48).unwrap(), Some((0, 48)));
    // A zero-width window resolves nothing and answers zero.
    assert_eq!(ring.resolved_window(47, 0).unwrap(), None);
    assert_eq!(ring.query_at(47, 0, 255).unwrap(), 0.0);
    let est = ring.query_at(47, 16, 255).unwrap();
    let truth = oracle.count(32, 48, 255);
    assert!((est - truth).abs() / truth <= 0.2, "pane-seal query: {est} vs {truth}");

    // Retention: with a 64-tick horizon, a 200-tick stream expires its old
    // panes. Windows reaching past the horizon fail loudly; a window starting
    // exactly at the expiry boundary still answers.
    let panes = PaneConfig::new(16).with_retention(64);
    let mut ring = windowed_count(0.2, 0.1, 255, 10_000, 5, panes).unwrap();
    for t in 0..200u64 {
        ring.observe(t % 10, t % 256, t).unwrap();
    }
    let horizon = ring.expired_through().expect("old panes must have expired");
    assert!(horizon > 0 && horizon <= 136, "horizon {horizon} out of range");
    let too_wide = 200 - (horizon - 1);
    assert!(matches!(
        ring.query_sliding(too_wide, 255),
        Err(CoreError::WindowExpired { .. })
    ));
    assert!(ring.query_sliding(200 - horizon, 255).is_ok());
    // A tuple older than the horizon is counted as dropped, not inserted.
    let before = ring.stored_tuples();
    ring.observe(1, 1, 0).unwrap();
    assert_eq!(ring.late_dropped(), 1);
    assert_eq!(ring.stored_tuples(), before);
}

#[test]
fn repeated_window_queries_reuse_cached_composites() {
    let mut ring = windowed_f2(0.25, 0.1, 255, 10_000, 3, PaneConfig::new(32)).unwrap();
    for t in 0..2_000u64 {
        ring.observe(t % 50, t % 256, t).unwrap();
    }
    let base = ring.composites_built();
    ring.query_sliding(256, 128).unwrap();
    assert_eq!(ring.composites_built(), base + 1, "first query merges panes");
    for _ in 0..5 {
        ring.query_sliding(256, 128).unwrap();
        ring.query_sliding(256, 64).unwrap(); // same span, different threshold
    }
    assert_eq!(
        ring.composites_built(),
        base + 1,
        "repeats at an unchanged ring must hit the composite cache"
    );
    ring.query_sliding(1_024, 128).unwrap();
    assert_eq!(ring.composites_built(), base + 2, "a new span merges once");
    ring.observe(1, 1, 2_000).unwrap();
    ring.query_sliding(256, 128).unwrap();
    assert_eq!(ring.composites_built(), base + 3, "mutation invalidates the cache");
}

#[test]
fn single_pass_correlated_sketch_rejects_turnstile_updates() {
    // The API-level guard matching the Section 4.1 impossibility: the
    // single-pass structure refuses deletions instead of silently answering
    // wrong.
    let mut sketch = cora_core::correlated_f2(0.2, 0.1, 1023, 1000).unwrap();
    assert!(sketch.update(1, 10, 1).is_ok());
    assert!(sketch.update(1, 10, -1).is_err());
}
