//! Cross-crate integration tests for the turnstile-model machinery (multipass,
//! lower-bound instances) and the asynchronous sliding-window reduction.

use cora_core::ExactCorrelated;
use cora_stream::{
    greater_than_instance, multipass_f2, solve_exactly, AsyncWindowCount, StoredStream,
    StreamTuple,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn multipass_agrees_with_exact_correlated_f2_under_deletions() {
    let mut rng = StdRng::seed_from_u64(17);
    let y_max = 8_191u64;
    let mut tuples = Vec::new();
    for _ in 0..30_000 {
        let x = rng.gen_range(0..300u64);
        let y = rng.gen_range(0..=y_max);
        tuples.push(StreamTuple::weighted(x, y, 1));
    }
    // Delete a third of the insertions again.
    for i in (0..tuples.len()).step_by(3) {
        let t = tuples[i];
        tuples.push(StreamTuple::weighted(t.x, t.y, -1));
    }
    let stream = StoredStream::new(tuples);
    let eps = 0.2;
    let estimator = multipass_f2(&stream, eps, 0.05, y_max, 23);
    assert!(estimator.passes_used() <= 16, "too many passes: {}", estimator.passes_used());

    let mut exact = ExactCorrelated::new();
    for t in stream.tuples() {
        exact.update(t.x, t.y, t.weight);
    }
    for &tau in &[y_max / 4, y_max / 2, y_max] {
        let truth = exact.frequency_moment(2, tau);
        let est = estimator.query(tau);
        let err = (est - truth).abs() / truth.max(1.0);
        assert!(
            err < 3.0 * eps,
            "tau={tau}: multipass {est} vs exact {truth} (err {err})"
        );
    }
}

#[test]
fn greater_than_instances_are_decided_by_correlated_queries() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..200 {
        let bits = rng.gen_range(2..20u32);
        let a = rng.gen_range(0..(1u64 << bits));
        let b = rng.gen_range(0..(1u64 << bits));
        let stream = greater_than_instance(a, b, bits);
        assert_eq!(solve_exactly(&stream, bits), a.cmp(&b), "a={a} b={b} bits={bits}");
    }
}

#[test]
fn async_window_count_matches_brute_force_across_windows() {
    let t_max = 500_000u64;
    let n = 50_000u64;
    let mut window = AsyncWindowCount::new(0.2, 0.05, t_max, n, 13).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let mut events = Vec::new();
    for i in 0..n {
        let t = rng.gen_range(0..=t_max);
        events.push(t);
        window.observe(i % 1_000, t).unwrap();
    }
    for &w in &[50_000u64, 200_000, 500_000] {
        let truth = events.iter().filter(|&&t| t >= t_max - w).count() as f64;
        let est = window.query_window(t_max, w).unwrap();
        let err = (est - truth).abs() / truth;
        assert!(err < 0.25, "window {w}: est {est}, truth {truth}");
    }
}

#[test]
fn single_pass_correlated_sketch_rejects_turnstile_updates() {
    // The API-level guard matching the Section 4.1 impossibility: the
    // single-pass structure refuses deletions instead of silently answering
    // wrong.
    let mut sketch = cora_core::correlated_f2(0.2, 0.1, 1023, 1000).unwrap();
    assert!(sketch.update(1, 10, 1).is_ok());
    assert!(sketch.update(1, 10, -1).is_err());
}
